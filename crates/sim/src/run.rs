//! Scoring a predictor over a trace.

use ibp_core::Predictor;
use ibp_trace::{Trace, TraceEvent};

/// The outcome of simulating one predictor over one trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Indirect branches scored.
    pub indirect: u64,
    /// Of those, how many were mispredicted (a table miss counts as a
    /// misprediction, as in the paper).
    pub mispredicted: u64,
}

impl RunStats {
    /// Mispredictions per indirect branch, in `[0, 1]`. Zero-length runs
    /// report 0.
    #[must_use]
    pub fn misprediction_rate(&self) -> f64 {
        if self.indirect == 0 {
            0.0
        } else {
            self.mispredicted as f64 / self.indirect as f64
        }
    }

    /// The complement: correct predictions per indirect branch.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        1.0 - self.misprediction_rate()
    }

    /// Merges two runs (e.g. per-benchmark partial runs of one program).
    #[must_use]
    pub fn merged(self, other: RunStats) -> RunStats {
        RunStats {
            indirect: self.indirect + other.indirect,
            mispredicted: self.mispredicted + other.mispredicted,
        }
    }
}

/// Simulates a predictor over a full trace.
///
/// For every indirect branch: predict, score against the actual target
/// (`None` scores as a miss), then update. Conditional-branch events are
/// forwarded to [`Predictor::observe_cond`], which all §3.3-variation
/// predictors use and everything else ignores.
pub fn simulate(trace: &Trace, predictor: &mut dyn Predictor) -> RunStats {
    simulate_warm(trace, predictor, 0)
}

/// Like [`simulate`], but the first `warmup` indirect branches train the
/// predictor without being scored.
///
/// The paper skips initialisation phases for two benchmarks (jhm, self) at
/// the *trace* level; this knob lets experiments separate cold-start misses
/// from steady-state behaviour (used by the capacity-miss analysis of
/// Figure 11).
///
/// With tracing on (`IBP_TRACE`), each run emits a `simulate` span carrying
/// the warmup/scored split and the achieved events/sec.
pub fn simulate_warm(trace: &Trace, predictor: &mut dyn Predictor, warmup: u64) -> RunStats {
    let mut span = ibp_obs::span("simulate");
    let timer = span.armed().then(std::time::Instant::now);
    let mut stats = RunStats::default();
    let mut seen = 0u64;
    for event in trace.events() {
        match event {
            TraceEvent::Indirect(b) => {
                seen += 1;
                if seen > warmup {
                    let predicted = predictor.predict(b.pc);
                    stats.indirect += 1;
                    if predicted != Some(b.target) {
                        stats.mispredicted += 1;
                    }
                }
                predictor.update(b.pc, b.target);
            }
            TraceEvent::Cond(b) => {
                predictor.observe_cond(b.pc, b.outcome());
            }
        }
    }
    if let Some(t0) = timer {
        span.note("trace", trace.name());
        span.note("events", seen);
        span.note("warmup", seen.min(warmup));
        span.note("scored", stats.indirect);
        let secs = t0.elapsed().as_secs_f64();
        if secs > 0.0 {
            span.note("events_per_sec", (seen as f64 / secs).round());
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibp_core::PredictorConfig;
    use ibp_trace::{Addr, BranchKind};

    fn alternating_trace(n: u64) -> Trace {
        let mut t = Trace::new("alt");
        for i in 0..n {
            let target = if i % 2 == 0 { 0x900 } else { 0xA00 };
            t.push_indirect(Addr::new(0x100), Addr::new(target), BranchKind::Switch);
        }
        t
    }

    #[test]
    fn btb_always_misses_alternation() {
        let t = alternating_trace(100);
        let mut p = PredictorConfig::btb().build();
        let r = simulate(&t, p.as_mut());
        assert_eq!(r.indirect, 100);
        // Every prediction wrong (first is a cold miss).
        assert_eq!(r.mispredicted, 100);
        assert!((r.misprediction_rate() - 1.0).abs() < 1e-12);
        assert!(r.hit_rate().abs() < 1e-12);
    }

    #[test]
    fn two_level_learns_alternation() {
        let t = alternating_trace(100);
        let mut p = PredictorConfig::unconstrained(1).build();
        let r = simulate(&t, p.as_mut());
        // Only warm-up misses.
        assert!(r.mispredicted <= 4, "misses = {}", r.mispredicted);
    }

    #[test]
    fn warmup_excludes_cold_misses() {
        let t = alternating_trace(100);
        let mut p = PredictorConfig::unconstrained(1).build();
        let r = simulate_warm(&t, p.as_mut(), 10);
        assert_eq!(r.indirect, 90);
        assert_eq!(r.mispredicted, 0);
    }

    #[test]
    fn cond_events_do_not_score() {
        let mut t = Trace::new("c");
        t.push_cond(Addr::new(0x10), Addr::new(0x20), true);
        t.push_indirect(Addr::new(0x100), Addr::new(0x900), BranchKind::Switch);
        let mut p = PredictorConfig::btb_2bc().build();
        let r = simulate(&t, p.as_mut());
        assert_eq!(r.indirect, 1);
    }

    #[test]
    fn empty_trace_zero_rate() {
        let t = Trace::new("empty");
        let mut p = PredictorConfig::btb_2bc().build();
        let r = simulate(&t, p.as_mut());
        assert_eq!(r.misprediction_rate(), 0.0);
    }

    #[test]
    fn merged_adds_counts() {
        let a = RunStats {
            indirect: 10,
            mispredicted: 2,
        };
        let b = RunStats {
            indirect: 30,
            mispredicted: 3,
        };
        let m = a.merged(b);
        assert_eq!(m.indirect, 40);
        assert_eq!(m.mispredicted, 5);
        assert!((m.misprediction_rate() - 0.125).abs() < 1e-12);
    }
}
