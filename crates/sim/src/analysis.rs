//! Deeper simulation analytics: miss classification, per-site breakdowns
//! and pattern censuses.
//!
//! These reproduce the *analytical* observations scattered through the
//! paper's prose — e.g. §5.1's "p = 2 wins at table size 256 with a
//! misprediction rate of 12.5 %, 3.6 % of which is due to capacity misses"
//! and "*ixx* generates 203 different patterns for path length p = 0 …
//! and ends up with 9403 patterns for p = 12".

use std::collections::{HashMap, HashSet};

use ibp_core::{
    fold_two_level_chunk, ChunkScorer, FoldKernel, Predictor, ProbeSink, TwoLevelPredictor,
    WarmTrigger,
};
use ibp_trace::io::TraceIoError;
use ibp_trace::{chunk_events, Addr, EventSource, Trace, TraceChunk};

/// Misprediction breakdown by cause for a two-level predictor.
///
/// Every scored indirect branch falls into exactly one class:
///
/// * **hit** — predicted correctly;
/// * **wrong target** — the key was in the table but held another target
///   (the branch genuinely changed behaviour, or the 2bc rule is mid
///   transition);
/// * **capacity** — the key had been trained earlier but was evicted
///   (capacity or conflict, depending on the organisation);
/// * **cold** — the key had never been trained (compulsory / warm-up).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MissBreakdown {
    /// Correct predictions.
    pub hits: u64,
    /// Mispredictions with the pattern present.
    pub wrong_target: u64,
    /// Mispredictions because the pattern was evicted.
    pub capacity: u64,
    /// Mispredictions because the pattern was never seen.
    pub cold: u64,
}

impl MissBreakdown {
    /// Scored branches.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.hits + self.wrong_target + self.capacity + self.cold
    }

    /// Total misprediction rate.
    #[must_use]
    pub fn misprediction_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.wrong_target + self.capacity + self.cold) as f64 / total as f64
        }
    }

    /// The capacity/conflict component of the misprediction rate — the
    /// quantity the paper attributes in §5.1.
    #[must_use]
    pub fn capacity_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.capacity as f64 / total as f64
        }
    }

    /// The compulsory (cold) component of the misprediction rate.
    #[must_use]
    pub fn cold_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.cold as f64 / total as f64
        }
    }
}

/// Simulates a two-level predictor while classifying every misprediction.
///
/// The classifier shadows the predictor with an ever-seen key set (via
/// [`TwoLevelPredictor::key_fingerprint`]): a missing key that *was* seen
/// is a capacity/conflict miss, a missing key never seen is a cold miss.
/// For unbounded tables the capacity class is structurally zero.
pub fn simulate_classified(trace: &Trace, predictor: &mut TwoLevelPredictor) -> MissBreakdown {
    simulate_classified_source(&mut trace.cursor(), predictor)
        .expect("in-memory source cannot fail")
}

/// Streaming form of [`simulate_classified`]: folds the classifier over a
/// chunked [`EventSource`] in bounded memory (apart from the ever-seen key
/// set, which grows with the number of distinct patterns, not events).
///
/// # Errors
///
/// Propagates the source's I/O or parse failures (in-memory sources are
/// infallible).
pub fn simulate_classified_source<S: EventSource + ?Sized>(
    source: &mut S,
    predictor: &mut TwoLevelPredictor,
) -> Result<MissBreakdown, TraceIoError> {
    // The kernel fold computes the key fingerprint before each fused
    // lookup+train step and reports score-then-note_trained — the same
    // order the old hand-rolled loop classified in, on the monomorphized
    // fast path.
    let mut sink = ClassifySink::default();
    let mut scorer = ChunkScorer::probed(0, &mut sink, WarmTrigger::AtCrossing, None);
    let mut chunk = TraceChunk::default();
    loop {
        let more = source.fill(&mut chunk, chunk_events())?;
        fold_two_level_chunk(predictor, chunk.events(), &mut scorer);
        if !more {
            break;
        }
    }
    Ok(sink.breakdown)
}

/// A [`ProbeSink`] that classifies every scored event into the
/// [`MissBreakdown`] taxonomy via the ever-seen fingerprint set.
#[derive(Debug, Default)]
struct ClassifySink {
    seen: HashSet<u64>,
    breakdown: MissBreakdown,
}

impl ProbeSink for ClassifySink {
    fn wants_fingerprint(&self) -> bool {
        true
    }

    fn score(&mut self, _pc: Addr, predicted: Option<Addr>, actual: Addr, fp: Option<u64>) {
        match predicted {
            Some(p) if p == actual => self.breakdown.hits += 1,
            Some(_) => self.breakdown.wrong_target += 1,
            None if fp.is_some_and(|key| self.seen.contains(&key)) => self.breakdown.capacity += 1,
            None => self.breakdown.cold += 1,
        }
    }

    fn note_trained(&mut self, fp: Option<u64>) {
        if let Some(key) = fp {
            self.seen.insert(key);
        }
    }

    fn sample(&mut self, _point: &str, _predictor: &dyn Predictor) {}
}

/// Per-site misprediction statistics from one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteMisses {
    /// The branch site.
    pub pc: Addr,
    /// Scored executions.
    pub executions: u64,
    /// Mispredicted executions.
    pub mispredicted: u64,
}

impl SiteMisses {
    /// The site's misprediction rate.
    #[must_use]
    pub fn rate(&self) -> f64 {
        if self.executions == 0 {
            0.0
        } else {
            self.mispredicted as f64 / self.executions as f64
        }
    }
}

/// Folds a [`FoldKernel`] over a chunked [`EventSource`] and returns
/// per-site misprediction counts, sorted by descending misprediction
/// volume. Memory is bounded by the chunk size plus one accumulator per
/// distinct site.
///
/// Useful for the "which sites dominate the misses" question that drives
/// the paper's focus on a handful of megamorphic branches.
///
/// # Errors
///
/// Propagates the source's I/O or parse failures (in-memory sources are
/// infallible).
pub fn simulate_per_site<S: EventSource + ?Sized>(
    source: &mut S,
    kernel: &mut FoldKernel,
) -> Result<Vec<SiteMisses>, TraceIoError> {
    let mut sink = SiteSink::default();
    let mut scorer = ChunkScorer::probed(0, &mut sink, WarmTrigger::AtCrossing, None);
    let mut chunk = TraceChunk::default();
    loop {
        let more = source.fill(&mut chunk, chunk_events())?;
        kernel.fold_chunk(chunk.events(), &mut scorer);
        if !more {
            break;
        }
    }
    let mut out: Vec<SiteMisses> = sink
        .per_site
        .into_iter()
        .map(|(pc, (executions, mispredicted))| SiteMisses {
            pc,
            executions,
            mispredicted,
        })
        .collect();
    out.sort_by(|a, b| b.mispredicted.cmp(&a.mispredicted).then(a.pc.cmp(&b.pc)));
    Ok(out)
}

/// A [`ProbeSink`] accumulating per-site execution/misprediction counts.
#[derive(Debug, Default)]
struct SiteSink {
    per_site: HashMap<Addr, (u64, u64)>,
}

impl ProbeSink for SiteSink {
    fn wants_fingerprint(&self) -> bool {
        false
    }

    fn score(&mut self, pc: Addr, predicted: Option<Addr>, actual: Addr, _fp: Option<u64>) {
        let entry = self.per_site.entry(pc).or_insert((0, 0));
        entry.0 += 1;
        if predicted != Some(actual) {
            entry.1 += 1;
        }
    }

    fn note_trained(&mut self, _fp: Option<u64>) {}

    fn sample(&mut self, _point: &str, _predictor: &dyn Predictor) {}
}

/// Counts the distinct `(branch, path)` patterns a trace generates at a
/// given path length — the paper's §5.1 pattern-census (203 patterns at
/// `p = 0` up to 9403 at `p = 12` for *ixx*).
#[must_use]
pub fn pattern_census(trace: &Trace, path_len: usize) -> usize {
    pattern_census_source(&mut trace.cursor(), path_len).expect("in-memory source cannot fail")
}

/// Streaming form of [`pattern_census`]: table growth is bounded by the
/// number of distinct patterns, never the trace length.
///
/// # Errors
///
/// Propagates the source's I/O or parse failures.
pub fn pattern_census_source<S: EventSource + ?Sized>(
    source: &mut S,
    path_len: usize,
) -> Result<usize, TraceIoError> {
    let mut predictor =
        TwoLevelPredictor::unconstrained(path_len, ibp_core::HistorySharing::GLOBAL);
    // An infinite warmup keeps every event unscored: the kernel fold then
    // trains the table without ever probing it, exactly like the old
    // update-only loop.
    let mut scorer = ChunkScorer::new(u64::MAX);
    let mut chunk = TraceChunk::default();
    loop {
        let more = source.fill(&mut chunk, chunk_events())?;
        fold_two_level_chunk(&mut predictor, chunk.events(), &mut scorer);
        if !more {
            return Ok(predictor.stored_patterns());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibp_core::CompressedKeySpec;
    use ibp_trace::BranchKind;

    fn a(raw: u32) -> Addr {
        Addr::new(raw)
    }

    /// A trace cycling through n distinct monomorphic sites.
    fn cycling_trace(sites: u32, rounds: u32) -> Trace {
        let mut t = Trace::new("cycle");
        for _ in 0..rounds {
            for s in 0..sites {
                t.push_indirect(a(0x100 + s * 4), a(0x9000 + s * 4), BranchKind::Switch);
            }
        }
        t
    }

    #[test]
    fn unbounded_tables_have_no_capacity_misses() {
        let t = cycling_trace(16, 10);
        let mut p = TwoLevelPredictor::compressed_unbounded(CompressedKeySpec::practical(0));
        let b = simulate_classified(&t, &mut p);
        assert_eq!(b.capacity, 0);
        assert_eq!(b.cold, 16);
        assert_eq!(b.wrong_target, 0);
        assert_eq!(b.hits, 16 * 9);
        assert_eq!(b.total(), 160);
    }

    #[test]
    fn thrashing_table_shows_capacity_misses() {
        // 16 sites cycling through a 4-entry LRU: every access after the
        // first round is a capacity miss.
        let t = cycling_trace(16, 10);
        let mut p = TwoLevelPredictor::full_assoc(CompressedKeySpec::practical(0), 4);
        let b = simulate_classified(&t, &mut p);
        assert_eq!(b.cold, 16);
        assert_eq!(b.capacity, 16 * 9);
        assert_eq!(b.hits, 0);
        assert!((b.capacity_rate() - 0.9).abs() < 1e-12);
        assert!((b.misprediction_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wrong_target_class_detected() {
        // One site alternating targets: BTB-style predictor keeps the key
        // resident but mispredicts half the time.
        let mut t = Trace::new("alt");
        for i in 0..40u32 {
            t.push_indirect(a(0x100), a(0x9000 + (i % 2) * 4), BranchKind::Switch);
        }
        let mut p = TwoLevelPredictor::compressed_unbounded(CompressedKeySpec::practical(0));
        let b = simulate_classified(&t, &mut p);
        assert_eq!(b.cold, 1);
        assert_eq!(b.capacity, 0);
        assert!(b.wrong_target > 10);
    }

    #[test]
    fn per_site_attribution() {
        // Site A monomorphic, site B alternating: B owns the misses.
        let mut t = Trace::new("two");
        for i in 0..30u32 {
            t.push_indirect(a(0x100), a(0x9000), BranchKind::Switch);
            t.push_indirect(a(0x200), a(0xA000 + (i % 2) * 4), BranchKind::Switch);
        }
        let mut k = ibp_core::PredictorConfig::btb().build_kernel();
        let sites = simulate_per_site(&mut t.cursor(), &mut k).expect("in-memory source");
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].pc, a(0x200));
        assert!(sites[0].rate() > 0.9);
        assert!(sites[1].rate() < 0.1);
        assert_eq!(sites[0].executions, 30);
    }

    #[test]
    fn pattern_census_grows_with_path_length() {
        let trace = {
            let mut t = Trace::new("mix");
            for i in 0..400u32 {
                let s = i % 5;
                let target = 0x9000 + ((i * 7 + s) % 6) * 4;
                t.push_indirect(a(0x100 + s * 4), a(target), BranchKind::Switch);
            }
            t
        };
        let p0 = pattern_census(&trace, 0);
        let p2 = pattern_census(&trace, 2);
        let p6 = pattern_census(&trace, 6);
        assert_eq!(p0, 5);
        assert!(p2 > p0);
        assert!(p6 >= p2);
    }

    #[test]
    fn breakdown_totals_match_plain_simulation() {
        let t = cycling_trace(8, 6);
        let mut classified = TwoLevelPredictor::full_assoc(CompressedKeySpec::practical(1), 8);
        let b = simulate_classified(&t, &mut classified);
        let mut plain = TwoLevelPredictor::full_assoc(CompressedKeySpec::practical(1), 8);
        let stats = crate::simulate(&t, &mut plain);
        assert_eq!(b.total(), stats.indirect);
        assert!((b.misprediction_rate() - stats.misprediction_rate()).abs() < 1e-12);
    }
}
