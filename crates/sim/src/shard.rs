//! The chunk-parallel sharded simulation pipeline.
//!
//! A sequential fold ([`simulate_source`]) walks one trace into one
//! predictor. For configurations whose state partitions disjointly by
//! branch site ([`PredictorConfig::shardable`]), the same run can be split
//! across workers without changing a single predicted target:
//!
//! * a **router** (the calling thread) pulls [`TraceChunk`]s from the
//!   source, partitions each by site region
//!   ([`TraceChunk::partition_by_site`]) and pushes the per-shard batches
//!   onto bounded SPSC queues — backpressure caps memory at
//!   `shards × capacity` chunks;
//! * each **shard worker** owns a full predictor instance but, by the
//!   routing invariant, only ever touches the state partition of its own
//!   site regions; it folds its batches in order with exactly the
//!   sequential scoring rules;
//! * the **merge** sums per-shard [`RunStats`]. Both fields are event
//!   counts, so the merged result is identical — not just statistically
//!   close — to the sequential fold's.
//!
//! Warmup is a global prefix of the event stream; since routing preserves
//! per-shard order, it maps onto a per-shard prefix that the router
//! attaches to each batch.
//!
//! How many shards a run gets is a scheduling decision
//! ([`shard_budget`]): `IBP_SHARDS=0` disables the pipeline, `IBP_SHARDS=n`
//! forces `n` workers regardless of core count (the equivalence tests rely
//! on that), and `auto` (the default) spends idle cores on intra-run
//! shards only when the work queue is tail-heavy — fewer cells left than
//! threads to run them, the regime the journal's per-cell queue-wait data
//! identified as the wall-time tail.
//!
//! With tracing on (`IBP_TRACE`), every sharded run emits a
//! `shard_pipeline` span and one `shard` span per worker (events folded,
//! busy/idle split); the registry tracks per-shard occupancy under
//! `shard.*`.
//!
//! [`PredictorConfig::shardable`]: ibp_core::PredictorConfig::shardable
//! [`simulate_source`]: crate::simulate_source

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

use ibp_core::{ChunkScorer, FoldKernel, ShardRouting, WarmTrigger};
use ibp_obs as obs;
use ibp_obs::metrics::{Counter, Histogram, WorkClock};
use ibp_trace::io::TraceIoError;
use ibp_trace::{chunk_events, EventSource, TraceChunk, TraceEvent};

use crate::faults;
use crate::probe::{self, ProbePayload, ProbePolicy, ProbeRun};
use crate::run::{simulate_kernel, RunStats};

/// A contained failure in one pipeline worker: a caught panic, an
/// injected stall, or a queue wait that exceeded the watchdog. Reported
/// through the pipeline's result channel — never a poisoned lock or a
/// process abort.
#[derive(Debug, Clone)]
pub struct WorkerFault {
    /// Where the fault happened (a `faults` site name for injected
    /// faults, `shard.queue`/`component.queue` for watchdogged waits).
    pub site: &'static str,
    /// Human-readable payload: the panic message or the stalled wait.
    pub detail: String,
}

impl WorkerFault {
    pub(crate) fn from_panic(
        site: &'static str,
        payload: Box<dyn std::any::Any + Send>,
    ) -> WorkerFault {
        WorkerFault {
            site,
            detail: faults::panic_detail(payload.as_ref()),
        }
    }

    pub(crate) fn stalled(site: &'static str, waiting_for: &str) -> WorkerFault {
        WorkerFault {
            site,
            detail: format!(
                "queue wait exceeded the {:?} watchdog waiting for {waiting_for}",
                faults::watchdog()
            ),
        }
    }
}

impl fmt::Display for WorkerFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker fault at {}: {}", self.site, self.detail)
    }
}

/// Why a parallel pipeline could not produce a result. The engine treats
/// `Fault` as containable: it logs a `degraded` event and re-runs the
/// cell on the sequential kernel fold, which is byte-identical.
#[derive(Debug)]
pub enum PipelineError {
    /// The event source itself failed — sequential retry would hit the
    /// same error, so this propagates.
    Io(TraceIoError),
    /// A worker thread failed or a queue stalled; the work is retryable.
    Fault(WorkerFault),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Io(e) => write!(f, "{e}"),
            PipelineError::Fault(fault) => write!(f, "{fault}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<TraceIoError> for PipelineError {
    fn from(e: TraceIoError) -> Self {
        PipelineError::Io(e)
    }
}

/// How many shard workers a run may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPolicy {
    /// Never shard (`IBP_SHARDS=0`): every run folds sequentially.
    Off,
    /// Shard when the scheduler finds idle capacity (`IBP_SHARDS=auto`,
    /// the default).
    Auto,
    /// Always use exactly this many shard workers for shardable runs
    /// (`IBP_SHARDS=n`), regardless of core count.
    Fixed(usize),
}

fn env_policy() -> ShardPolicy {
    static POLICY: OnceLock<ShardPolicy> = OnceLock::new();
    *POLICY.get_or_init(|| match std::env::var("IBP_SHARDS") {
        Ok(raw) => match raw.as_str() {
            "auto" => ShardPolicy::Auto,
            _ => match raw.parse::<usize>() {
                Ok(0) => ShardPolicy::Off,
                Ok(n) => ShardPolicy::Fixed(n),
                Err(_) => {
                    eprintln!(
                        "warning: ignoring invalid IBP_SHARDS={raw:?} \
                         (expected a shard count, \"auto\" or 0); using auto"
                    );
                    ShardPolicy::Auto
                }
            },
        },
        Err(_) => ShardPolicy::Auto,
    })
}

fn override_slot() -> &'static Mutex<Option<ShardPolicy>> {
    static SLOT: Mutex<Option<ShardPolicy>> = Mutex::new(None);
    &SLOT
}

/// Replaces the `IBP_SHARDS` policy for this process (`None` restores the
/// environment's). For tests and measurement binaries that compare
/// policies within one process — the environment variable is read once.
pub fn override_policy(policy: Option<ShardPolicy>) {
    *override_slot()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = policy;
}

/// The active shard policy: the process-wide override if one is set
/// ([`override_policy`]), else `IBP_SHARDS` parsed once with
/// warn-and-default (like `IBP_EVENTS`).
#[must_use]
pub fn shard_policy() -> ShardPolicy {
    override_slot()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .unwrap_or_else(env_policy)
}

pub(crate) fn threads_available() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// How many shard workers each of `tasks` queued cells should get.
///
/// `Fixed(n)` always grants `n`. `Auto` grants extra workers only when the
/// queue is tail-heavy — fewer tasks than threads, so cores would
/// otherwise idle while the stragglers finish — and caps the grant at 8
/// (diminishing returns: the router becomes the bottleneck). When a
/// journal from a prior run is on disk, the grant is sized by the
/// *observed* cell-duration tail (p95/mean — the same figures
/// `obs_report --sharding` prints) instead of queue depth alone; see
/// [`auto_budget`]. `Off` and a saturated queue grant 1 (sequential).
#[must_use]
pub fn shard_budget(tasks: usize) -> usize {
    let budget = match shard_policy() {
        ShardPolicy::Off => 1,
        ShardPolicy::Fixed(n) => n.max(1),
        ShardPolicy::Auto => auto_budget(tasks, threads_available(), observed_tail_ratio()),
    };
    if budget > 1 {
        obs::debug!("[shard] budget: {tasks} tasks -> {budget} shards each");
    }
    budget
}

/// The `auto` grant for `tasks` remaining cells on `threads` cores, given
/// the cell-duration tail ratio (p95/mean) observed in a prior run's
/// journal, when one exists.
///
/// A saturated queue (`tasks >= threads`) never fans out — every core
/// already has a cell. On a tail-heavy queue the depth heuristic spreads
/// idle cores evenly (`threads / tasks`); with variance data the grant is
/// raised to the observed ratio, because a p95 straggler runs `ratio`×
/// the mean cell and needs that many workers to finish in roughly mean
/// time. Both are capped by the pool size and by 8 (the router becomes
/// the bottleneck beyond that).
fn auto_budget(tasks: usize, threads: usize, tail_ratio: Option<f64>) -> usize {
    if tasks == 0 || tasks >= threads {
        return 1;
    }
    let depth = (threads / tasks).clamp(1, 8);
    match tail_ratio {
        Some(ratio) if ratio.is_finite() && ratio >= 1.0 => {
            let boost = (ratio.ceil() as usize).min(threads).min(8);
            depth.max(boost)
        }
        _ => depth,
    }
}

/// The cell-duration tail ratio (p95/mean) from the most recent prior-run
/// journal under `$IBP_RESULTS/journal`, loaded once per process. The
/// active journal (if tracing is on) is excluded — it describes *this*
/// run, which is still in flight.
fn observed_tail_ratio() -> Option<f64> {
    static RATIO: OnceLock<Option<f64>> = OnceLock::new();
    *RATIO.get_or_init(|| {
        let path = latest_prior_journal()?;
        let records = obs::read_journal(&path).ok()?;
        let mut durs: Vec<u64> = records
            .iter()
            .filter(|r| r.kind == obs::journal::Kind::Span && r.name == "cell")
            .filter_map(|r| r.dur_us)
            .collect();
        let ratio = tail_ratio(&mut durs)?;
        obs::debug!(
            "[shard] prior journal {}: cell tail p95/mean = {ratio:.2}",
            path.display()
        );
        Some(ratio)
    })
}

fn latest_prior_journal() -> Option<std::path::PathBuf> {
    let dir = std::path::PathBuf::from(
        std::env::var("IBP_RESULTS").unwrap_or_else(|_| "results".into()),
    )
    .join("journal");
    let active = obs::journal::path();
    let mut newest: Option<(std::time::SystemTime, std::path::PathBuf)> = None;
    for entry in std::fs::read_dir(dir).ok()?.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("jsonl") {
            continue;
        }
        if Some(&path) == active.as_ref() {
            continue;
        }
        let Ok(modified) = entry.metadata().and_then(|m| m.modified()) else {
            continue;
        };
        if newest.as_ref().is_none_or(|(t, _)| modified > *t) {
            newest = Some((modified, path));
        }
    }
    newest.map(|(_, path)| path)
}

/// p95/mean of a duration sample. `None` below 8 cells — too little
/// signal to outweigh the depth heuristic.
fn tail_ratio(durs: &mut [u64]) -> Option<f64> {
    if durs.len() < 8 {
        return None;
    }
    durs.sort_unstable();
    let mean = durs.iter().sum::<u64>() as f64 / durs.len() as f64;
    if mean <= 0.0 {
        return None;
    }
    // Nearest-rank p95, 0-based ceil(0.95 * n) capped at the last cell.
    // The old `(n - 1) * 95 / 100` rounded *down*: at n = 20 it indexed
    // cell 18, so one straggler in 20 — exactly the regime the auto
    // scheduler exists for — read as a flat tail and never fanned out.
    let idx = (durs.len() * 95).div_ceil(100).min(durs.len() - 1);
    let p95 = durs[idx] as f64;
    Some(p95 / mean)
}

fn runs_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| obs::metrics::counter("shard.runs"))
}

fn events_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| obs::metrics::counter("shard.events"))
}

fn busy_us_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| obs::metrics::counter("shard.busy_us"))
}

fn idle_us_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| obs::metrics::counter("shard.idle_us"))
}

fn occupancy_histogram() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| {
        obs::metrics::histogram("shard.occupancy_pct", &[10, 25, 50, 75, 90, 95, 99, 100])
    })
}

/// One routed unit of work: a per-shard slice of a source chunk plus how
/// many of its leading indirect events fall inside the global warmup
/// window.
struct Batch {
    chunk: TraceChunk,
    warmup: u64,
}

/// Items the producer may buffer per queue before blocking. Bounds memory
/// and keeps a router from racing arbitrarily far ahead of a slow worker.
pub(crate) const QUEUE_CAPACITY: usize = 4;

/// A bounded single-producer single-consumer queue. The sharded pipeline
/// runs one per shard (router produces batches, shard worker consumes);
/// the component pipeline (`crate::component`) reuses it for chunk
/// broadcast and record return.
pub(crate) struct SpscQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
    space: Condvar,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded queue wait exceeded the watchdog: the peer thread stopped
/// making progress (it failed without closing the queue, or is wedged).
#[derive(Debug, Clone, Copy)]
pub(crate) struct QueueStalled;

impl<T> SpscQueue<T> {
    pub(crate) fn new() -> Self {
        SpscQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(QUEUE_CAPACITY),
                closed: false,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
        }
    }

    /// Locks the queue state, recovering from poison. A worker that
    /// panicked while holding the lock was between two field writes at
    /// worst (push_back/pop_front keep the deque coherent), and the
    /// containment layer needs the router to keep draining after any
    /// worker dies — poison propagation would turn one contained panic
    /// into a pipeline-wide abort.
    fn lock(&self) -> MutexGuard<'_, QueueState<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Blocks while the queue is full, up to the watchdog bound per wait
    /// (consulted only when a wait is actually needed — the uncontended
    /// path costs nothing extra). Pushing after `close` drops the item
    /// (the consumer is gone; only shutdown paths do this).
    pub(crate) fn push(&self, item: T) -> Result<(), QueueStalled> {
        let mut state = self.lock();
        while state.items.len() >= QUEUE_CAPACITY && !state.closed {
            let (guard, timeout) = self
                .space
                .wait_timeout(state, faults::watchdog())
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
            if timeout.timed_out() && state.items.len() >= QUEUE_CAPACITY && !state.closed {
                return Err(QueueStalled);
            }
        }
        if !state.closed {
            state.items.push_back(item);
            self.ready.notify_one();
        }
        Ok(())
    }

    /// Blocks until an item arrives (watchdog-bounded per wait);
    /// `Ok(None)` once the queue is closed and drained.
    pub(crate) fn pop(&self) -> Result<Option<T>, QueueStalled> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                self.space.notify_one();
                return Ok(Some(item));
            }
            if state.closed {
                return Ok(None);
            }
            let (guard, timeout) = self
                .ready
                .wait_timeout(state, faults::watchdog())
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
            if timeout.timed_out() && state.items.is_empty() && !state.closed {
                return Err(QueueStalled);
            }
        }
    }

    pub(crate) fn close(&self) {
        let mut state = self.lock();
        state.closed = true;
        self.ready.notify_all();
        self.space.notify_all();
    }
}

/// The router loop: pull source chunks, allocate the global warmup prefix
/// to shards in event order, partition by site region, push batches. A
/// push that trips the watchdog means a worker died without closing its
/// queue; the router reports the stall and lets the pipeline shut down.
fn route_events<S: EventSource + ?Sized>(
    source: &mut S,
    routing: ShardRouting,
    queues: &[SpscQueue<Batch>],
    warmup: u64,
) -> Result<u64, PipelineError> {
    let shards = queues.len();
    let mut chunk = TraceChunk::default();
    let mut parts: Vec<TraceChunk> = vec![TraceChunk::default(); shards];
    let mut warm = vec![0u64; shards];
    let mut warmup_remaining = warmup;
    let mut routed = 0u64;
    loop {
        let more = source.fill(&mut chunk, chunk_events())?;
        if warmup_remaining > 0 {
            for event in chunk.events() {
                if warmup_remaining == 0 {
                    break;
                }
                if let TraceEvent::Indirect(b) = event {
                    warm[routing.shard_of(b.pc, shards)] += 1;
                    warmup_remaining -= 1;
                }
            }
        }
        chunk.partition_by_site(
            |pc| routing.shard_of(pc, shards),
            routing.routes_cond(),
            &mut parts,
        );
        routed += chunk.indirect_count();
        for (i, part) in parts.iter_mut().enumerate() {
            if !part.is_empty() || warm[i] > 0 {
                let batch = Batch {
                    chunk: std::mem::take(part),
                    warmup: std::mem::take(&mut warm[i]),
                };
                if queues[i].push(batch).is_err() {
                    return Err(PipelineError::Fault(WorkerFault::stalled(
                        "shard.queue",
                        &format!("shard {i} to drain its queue"),
                    )));
                }
            }
        }
        if !more {
            return Ok(routed);
        }
    }
}

/// One shard worker's fold loop. Runs under the spawn's `catch_unwind`
/// boundary; queue stalls (watchdogged waits) and injected stalls report
/// as [`WorkerFault`]s through the return value.
fn shard_worker(
    shard: usize,
    queue: &SpscQueue<Batch>,
    make: &(dyn Fn() -> FoldKernel + Sync),
    policy: ProbePolicy,
    warmup: u64,
) -> Result<(RunStats, Option<ProbePayload>), WorkerFault> {
    let mut shard_span = obs::span!("shard", shard = shard);
    let mut clock = WorkClock::start();
    let mut kernel = make();
    let mut probe = policy.on().then(|| ProbeRun::new(policy));
    // The global warmup window is a stream prefix, so a
    // worker's slice of the warm-point state is its state
    // just before its first scored event (or at worker
    // exit, if it never scores one). With no warmup there
    // is no warm sample at all, hence the trigger choice:
    // `AtCrossing` can never fire on a zero countdown.
    // Interval samples stay sequential-only (`None`).
    let mut scorer = match probe.as_mut() {
        Some(p) if warmup > 0 => ChunkScorer::probed(0, p, WarmTrigger::BeforeFirstScored, None),
        Some(p) => ChunkScorer::probed(0, p, WarmTrigger::AtCrossing, None),
        None => ChunkScorer::new(0),
    };
    let mut events = 0u64;
    loop {
        let batch = match queue.pop() {
            Ok(Some(batch)) => batch,
            Ok(None) => break,
            Err(QueueStalled) => {
                return Err(WorkerFault::stalled("shard.queue", "the router"));
            }
        };
        if faults::should_fire("shard.stall") {
            // An injected stall: stop consuming *without* closing the
            // queue, so the router's bounded push trips the watchdog —
            // this exercises the hang-containment path, not the panic
            // path.
            return Err(WorkerFault {
                site: "shard.stall",
                detail: "injected worker stall".to_string(),
            });
        }
        faults::fire_panic("shard.worker");
        events += batch.chunk.indirect_count();
        clock.busy(|| {
            scorer.set_warmup(batch.warmup);
            kernel.fold_chunk(batch.chunk.events(), &mut scorer);
        });
    }
    let stats = RunStats {
        indirect: scorer.indirect(),
        mispredicted: scorer.mispredicted(),
    };
    let warm_pending = scorer.warm_pending();
    let payload = probe.map(|mut p| {
        // A worker that never scored an event still owns
        // its slice of the warm-point state.
        if warm_pending {
            p.sample("warm", kernel.as_predictor());
        }
        p.sample("end", kernel.as_predictor());
        p.into_payload()
    });
    events_counter().add(events);
    busy_us_counter().add(clock.busy_us());
    idle_us_counter().add(clock.idle_us());
    occupancy_histogram().record(clock.util_pct());
    shard_span.note("events", events);
    shard_span.note("busy_us", clock.busy_us());
    shard_span.note("idle_us", clock.idle_us());
    shard_span.note("occupancy_pct", clock.util_pct());
    Ok((stats, payload))
}

/// Folds one event source across `shards` parallel workers and merges the
/// result — identical to the sequential
/// [`simulate_source`](crate::simulate_source) fold, provided `routing`
/// came from [`shardable`](ibp_core::PredictorConfig::shardable) on the
/// configuration that `make` builds.
///
/// Each worker constructs its own chunk-fold kernel via `make` and folds
/// its batches through [`FoldKernel::fold_chunk`] — one dispatch per batch,
/// with the scorer's warmup countdown overwritten per batch from the
/// router's global-prefix allocation (exactly the sequential scoring
/// rules). The routing invariant guarantees the workers' state partitions
/// never overlap, so per-site state evolves exactly as in one sequential
/// instance. A shard count of one (or zero) falls back to the sequential
/// fold directly.
///
/// # Errors
///
/// [`PipelineError::Io`] propagates the source's I/O or parse failures
/// (workers are joined first; their partial stats are discarded).
/// [`PipelineError::Fault`] reports a contained worker failure — a
/// caught panic or a watchdogged queue stall; the caller can re-run the
/// same fold sequentially for a byte-identical result.
pub fn simulate_source_sharded<S: EventSource + ?Sized>(
    source: &mut S,
    make: &(dyn Fn() -> FoldKernel + Sync),
    routing: ShardRouting,
    shards: usize,
    warmup: u64,
) -> Result<RunStats, PipelineError> {
    if shards <= 1 {
        let mut kernel = make();
        return simulate_kernel(source, &mut kernel, warmup).map_err(PipelineError::Io);
    }
    let mut span = obs::span!(
        "shard_pipeline",
        trace = source.name(),
        shards = shards,
        exponent = routing.exponent()
    );
    runs_counter().incr();
    let policy = probe::active_policy();
    let queues: Vec<SpscQueue<Batch>> = (0..shards).map(|_| SpscQueue::new()).collect();
    let outcome = std::thread::scope(|scope| {
        let handles: Vec<_> = queues
            .iter()
            .enumerate()
            .map(|(i, queue)| {
                scope.spawn(move || {
                    // The containment boundary: a panic anywhere in the
                    // fold (including an injected one) becomes a fault
                    // report on the worker's result channel, and the
                    // dying worker closes its own queue so the router's
                    // next push drops instead of backing up.
                    match catch_unwind(AssertUnwindSafe(|| {
                        shard_worker(i, queue, make, policy, warmup)
                    })) {
                        Ok(result) => result,
                        Err(payload) => {
                            queue.close();
                            Err(WorkerFault::from_panic("shard.worker", payload))
                        }
                    }
                })
            })
            .collect();
        let routed = route_events(source, routing, &queues, warmup);
        for queue in &queues {
            queue.close();
        }
        let joined: Vec<Result<(RunStats, Option<ProbePayload>), WorkerFault>> = handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(result) => result,
                // A panic that escaped the worker's own catch still
                // joins as a fault — never a poison cascade.
                Err(payload) => Err(WorkerFault::from_panic("shard.worker", payload)),
            })
            .collect();
        // Prefer a worker's own fault over the router-side symptom it
        // causes (a stalled push): the worker knows the true site.
        if let Some(fault) = joined.iter().find_map(|r| r.as_ref().err()) {
            return Err(PipelineError::Fault(fault.clone()));
        }
        let routed = routed?;
        let per_shard: Vec<(RunStats, Option<ProbePayload>)> = joined
            .into_iter()
            .map(|r| r.expect("worker faults handled above"))
            .collect();
        Ok((routed, per_shard))
    });
    let (routed, per_shard) = outcome?;
    // Merge in shard order. Both fields are u64 event counts, so the sum
    // is exact and order-independent — byte-identical to the sequential
    // fold's RunStats.
    let merged = per_shard
        .iter()
        .fold(RunStats::default(), |acc, (s, _)| acc.merged(*s));
    if policy.on() {
        // Shardable state partitions disjointly by site, so the per-shard
        // snapshots merge by addition into exactly the sequential fold's
        // snapshot; attribution counts add the same way (deep mode's
        // ever-seen key sets are per-shard, which is exact — keys live in
        // disjoint site partitions).
        let mut merged_probe = ProbePayload::default();
        for (_, payload) in per_shard {
            if let Some(p) = payload {
                merged_probe.absorb(p);
            }
        }
        merged_probe.emit(source.name(), &make().as_predictor().name(), "site-shard");
    }
    span.note("events", routed);
    span.note("scored", merged.indirect);
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::simulate_warm;
    use ibp_core::PredictorConfig;
    use ibp_trace::{Addr, BranchKind, Trace};

    /// A trace spread over many sites in distinct 2^2-regions, with
    /// conditionals interleaved, so every shard receives work.
    fn spread_trace(n: u64) -> Trace {
        let mut t = Trace::new("spread");
        for i in 0..n {
            let site = 0x1000 + 0x10 * (i % 23) as u32;
            let target = 0x9000 + 8 * ((i / 3) % 5) as u32;
            if i % 4 == 0 {
                t.push_cond(Addr::new(site + 4), Addr::new(0x40), i % 8 == 0);
            }
            t.push_indirect(Addr::new(site), Addr::new(target), BranchKind::VirtualCall);
        }
        t
    }

    #[test]
    fn sharded_fold_matches_sequential_fold() {
        let t = spread_trace(3_000);
        let cfg = PredictorConfig::btb_2bc();
        let routing = cfg.shardable().expect("BTB-2bc shards");
        for warmup in [0u64, 100] {
            let mut p = cfg.build();
            let expected = simulate_warm(&t, p.as_mut(), warmup);
            for shards in [1usize, 2, 4, 7] {
                let make = || cfg.build_kernel();
                let got = simulate_source_sharded(&mut t.cursor(), &make, routing, shards, warmup)
                    .expect("in-memory source");
                assert_eq!(got, expected, "shards = {shards}, warmup = {warmup}");
            }
        }
    }

    #[test]
    fn sharded_fold_matches_with_history_and_conditionals() {
        let t = spread_trace(2_000);
        let cfg = PredictorConfig::unconstrained(4)
            .with_history_sharing(ibp_core::HistorySharing::per_set(6))
            .with_cond_targets(true);
        let routing = cfg.shardable().expect("per-set history shards");
        assert!(routing.routes_cond());
        let mut p = cfg.build();
        let expected = simulate_warm(&t, p.as_mut(), 50);
        let make = || cfg.build_kernel();
        let got = simulate_source_sharded(&mut t.cursor(), &make, routing, 3, 50)
            .expect("in-memory source");
        assert_eq!(got, expected);
    }

    #[test]
    fn empty_source_merges_to_zero() {
        let t = Trace::new("empty");
        let cfg = PredictorConfig::btb();
        let routing = cfg.shardable().expect("shards");
        let make = || cfg.build_kernel();
        let got = simulate_source_sharded(&mut t.cursor(), &make, routing, 4, 0)
            .expect("in-memory source");
        assert_eq!(got, RunStats::default());
    }

    #[test]
    fn queue_closes_cleanly_when_empty() {
        let q = SpscQueue::new();
        q.close();
        assert!(q.pop().expect("closed, not stalled").is_none());
        // Pushing after close drops the batch rather than blocking.
        q.push(Batch {
            chunk: TraceChunk::default(),
            warmup: 0,
        })
        .expect("push after close drops");
        assert!(q.pop().expect("closed, not stalled").is_none());
    }

    #[test]
    fn queue_delivers_in_order_under_backpressure() {
        let q = SpscQueue::new();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                // More batches than QUEUE_CAPACITY: the producer must block
                // until the consumer drains.
                for i in 0..(QUEUE_CAPACITY as u64 * 3) {
                    q.push(Batch {
                        chunk: TraceChunk::default(),
                        warmup: i,
                    })
                    .expect("live consumer");
                }
                q.close();
            });
            let mut expected = 0u64;
            while let Some(batch) = q.pop().expect("live producer") {
                assert_eq!(batch.warmup, expected);
                expected += 1;
            }
            assert_eq!(expected, QUEUE_CAPACITY as u64 * 3);
        });
    }

    #[test]
    fn queue_waits_are_bounded_by_the_watchdog() {
        let _guard = faults::test_guard();
        faults::override_spec(Some("watchdog=50")).unwrap();
        let q: SpscQueue<u64> = SpscQueue::new();
        // No producer: an empty-queue pop must stall out, not hang.
        assert!(q.pop().is_err());
        // No consumer: a push past capacity must stall out, not hang.
        for i in 0..QUEUE_CAPACITY as u64 {
            q.push(i).expect("below capacity");
        }
        let start = std::time::Instant::now();
        assert!(q.push(99).is_err());
        assert!(start.elapsed() >= std::time::Duration::from_millis(50));
        // The queue stays usable after a stalled wait.
        assert_eq!(q.pop().expect("items buffered"), Some(0));
        faults::override_spec(None).unwrap();
    }

    #[test]
    fn injected_worker_panic_is_contained_as_a_fault() {
        let _guard = faults::test_guard();
        faults::override_spec(Some("shard.worker@2")).unwrap();
        let t = spread_trace(3_000);
        let cfg = PredictorConfig::btb_2bc();
        let routing = cfg.shardable().expect("BTB-2bc shards");
        let make = || cfg.build_kernel();
        let err = simulate_source_sharded(&mut t.cursor(), &make, routing, 3, 0)
            .expect_err("armed panic must surface as a pipeline error");
        match err {
            PipelineError::Fault(f) => {
                assert_eq!(f.site, "shard.worker");
                assert!(f.detail.contains("injected fault"), "detail: {}", f.detail);
            }
            PipelineError::Io(e) => panic!("unexpected io error: {e}"),
        }
        faults::override_spec(None).unwrap();
        // The pipeline is intact for the sequential retry path.
        let clean = simulate_source_sharded(&mut t.cursor(), &make, routing, 3, 0)
            .expect("unfaulted rerun");
        let mut p = cfg.build();
        assert_eq!(clean, simulate_warm(&t, p.as_mut(), 0));
    }

    #[test]
    fn injected_worker_stall_is_contained_as_a_fault() {
        let _guard = faults::test_guard();
        faults::override_spec(Some("shard.stall@1;watchdog=100")).unwrap();
        let t = spread_trace(3_000);
        let cfg = PredictorConfig::btb_2bc();
        let routing = cfg.shardable().expect("BTB-2bc shards");
        let make = || cfg.build_kernel();
        let err = simulate_source_sharded(&mut t.cursor(), &make, routing, 3, 0)
            .expect_err("armed stall must surface as a pipeline error");
        match err {
            PipelineError::Fault(f) => assert_eq!(f.site, "shard.stall"),
            PipelineError::Io(e) => panic!("unexpected io error: {e}"),
        }
        faults::override_spec(None).unwrap();
    }

    #[test]
    fn override_policy_wins_over_environment() {
        override_policy(Some(ShardPolicy::Fixed(3)));
        assert_eq!(shard_policy(), ShardPolicy::Fixed(3));
        assert_eq!(shard_budget(1_000), 3, "Fixed ignores queue depth");
        override_policy(Some(ShardPolicy::Off));
        assert_eq!(shard_budget(1), 1);
        override_policy(None);
    }

    #[test]
    fn auto_budget_only_fans_out_on_a_tail_heavy_queue() {
        override_policy(Some(ShardPolicy::Auto));
        let threads = threads_available();
        // A queue deeper than the thread pool never shards.
        assert_eq!(shard_budget(threads + 1), 1);
        assert_eq!(shard_budget(0), 1);
        // A single straggler gets the whole pool (capped at 8).
        assert_eq!(shard_budget(1), threads.clamp(1, 8));
        override_policy(None);
    }

    #[test]
    fn auto_budget_scales_with_observed_tail() {
        // No journal: the depth heuristic. 16 threads / 5 tasks -> 3.
        assert_eq!(auto_budget(5, 16, None), 3);
        // A heavier observed tail than the depth grant raises it: a p95
        // straggler at 6x the mean gets 6 workers.
        assert_eq!(auto_budget(5, 16, Some(6.3)), 7);
        assert_eq!(auto_budget(5, 16, Some(5.2)), 6);
        // ...capped by the pool and by 8.
        assert_eq!(auto_budget(3, 4, Some(40.0)), 4);
        assert_eq!(auto_budget(5, 16, Some(40.0)), 8);
        // A flat tail (ratio ~ 1) leaves the depth heuristic in charge.
        assert_eq!(auto_budget(5, 16, Some(1.0)), 3);
        // Degenerate ratios are ignored, and a saturated queue never
        // fans out no matter what the journal says.
        assert_eq!(auto_budget(5, 16, Some(f64::NAN)), 3);
        assert_eq!(auto_budget(16, 16, Some(6.0)), 1);
        assert_eq!(auto_budget(0, 16, Some(6.0)), 1);
    }

    #[test]
    fn tail_ratio_needs_a_sample_and_measures_p95_over_mean() {
        // Too few cells: no signal.
        assert_eq!(tail_ratio(&mut [100; 7]), None);
        assert_eq!(tail_ratio(&mut Vec::new()), None);
        // Flat cells: ratio 1.
        let flat = tail_ratio(&mut [100; 20]).expect("enough cells");
        assert!((flat - 1.0).abs() < 1e-9);
        // 18 cells at 100us plus two 2000us stragglers: p95 lands on a
        // straggler, the mean stays near 100us.
        let mut durs: Vec<u64> = vec![100; 18];
        durs.extend([2_000, 2_000]);
        let heavy = tail_ratio(&mut durs).expect("enough cells");
        assert!(heavy > 5.0, "p95/mean = {heavy}");
    }

    #[test]
    fn tail_ratio_sees_a_single_straggler_in_twenty() {
        // One 2000us straggler among 19 flat 100us cells — the queue-tail
        // regime the auto scheduler targets. The truncating p95 index
        // (`(n - 1) * 95 / 100` = cell 18) read this as a flat tail;
        // nearest-rank lands on the straggler.
        let mut durs: Vec<u64> = vec![100; 19];
        durs.push(2_000);
        let ratio = tail_ratio(&mut durs).expect("enough cells");
        assert!(ratio > 5.0, "p95/mean = {ratio}, straggler missed");
        // And the scheduler grant follows: the observed tail raises the
        // depth heuristic's fan-out.
        assert_eq!(auto_budget(5, 16, Some(ratio)), 8);
    }
}
