//! The chunk-parallel sharded simulation pipeline.
//!
//! A sequential fold ([`simulate_source`]) walks one trace into one
//! predictor. For configurations whose state partitions disjointly by
//! branch site ([`PredictorConfig::shardable`]), the same run can be split
//! across workers without changing a single predicted target:
//!
//! * a **router** (the calling thread) pulls [`TraceChunk`]s from the
//!   source, partitions each by site region
//!   ([`TraceChunk::partition_by_site`]) and pushes the per-shard batches
//!   onto bounded SPSC queues — backpressure caps memory at
//!   `shards × capacity` chunks;
//! * each **shard worker** owns a full predictor instance but, by the
//!   routing invariant, only ever touches the state partition of its own
//!   site regions; it folds its batches in order with exactly the
//!   sequential scoring rules;
//! * the **merge** sums per-shard [`RunStats`]. Both fields are event
//!   counts, so the merged result is identical — not just statistically
//!   close — to the sequential fold's.
//!
//! Warmup is a global prefix of the event stream; since routing preserves
//! per-shard order, it maps onto a per-shard prefix that the router
//! attaches to each batch.
//!
//! How many shards a run gets is a scheduling decision
//! ([`shard_budget`]): `IBP_SHARDS=0` disables the pipeline, `IBP_SHARDS=n`
//! forces `n` workers regardless of core count (the equivalence tests rely
//! on that), and `auto` (the default) spends idle cores on intra-run
//! shards only when the work queue is tail-heavy — fewer cells left than
//! threads to run them, the regime the journal's per-cell queue-wait data
//! identified as the wall-time tail.
//!
//! With tracing on (`IBP_TRACE`), every sharded run emits a
//! `shard_pipeline` span and one `shard` span per worker (events folded,
//! busy/idle split); the registry tracks per-shard occupancy under
//! `shard.*`.
//!
//! [`PredictorConfig::shardable`]: ibp_core::PredictorConfig::shardable
//! [`simulate_source`]: crate::simulate_source

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use ibp_core::{Predictor, ShardRouting};
use ibp_obs as obs;
use ibp_obs::metrics::{Counter, Histogram, WorkClock};
use ibp_trace::io::TraceIoError;
use ibp_trace::{chunk_events, EventSource, TraceChunk, TraceEvent};

use crate::run::{simulate_source, RunStats};

/// How many shard workers a run may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPolicy {
    /// Never shard (`IBP_SHARDS=0`): every run folds sequentially.
    Off,
    /// Shard when the scheduler finds idle capacity (`IBP_SHARDS=auto`,
    /// the default).
    Auto,
    /// Always use exactly this many shard workers for shardable runs
    /// (`IBP_SHARDS=n`), regardless of core count.
    Fixed(usize),
}

fn env_policy() -> ShardPolicy {
    static POLICY: OnceLock<ShardPolicy> = OnceLock::new();
    *POLICY.get_or_init(|| match std::env::var("IBP_SHARDS") {
        Ok(raw) => match raw.as_str() {
            "auto" => ShardPolicy::Auto,
            _ => match raw.parse::<usize>() {
                Ok(0) => ShardPolicy::Off,
                Ok(n) => ShardPolicy::Fixed(n),
                Err(_) => {
                    eprintln!(
                        "warning: ignoring invalid IBP_SHARDS={raw:?} \
                         (expected a shard count, \"auto\" or 0); using auto"
                    );
                    ShardPolicy::Auto
                }
            },
        },
        Err(_) => ShardPolicy::Auto,
    })
}

fn override_slot() -> &'static Mutex<Option<ShardPolicy>> {
    static SLOT: Mutex<Option<ShardPolicy>> = Mutex::new(None);
    &SLOT
}

/// Replaces the `IBP_SHARDS` policy for this process (`None` restores the
/// environment's). For tests and measurement binaries that compare
/// policies within one process — the environment variable is read once.
pub fn override_policy(policy: Option<ShardPolicy>) {
    *override_slot()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = policy;
}

/// The active shard policy: the process-wide override if one is set
/// ([`override_policy`]), else `IBP_SHARDS` parsed once with
/// warn-and-default (like `IBP_EVENTS`).
#[must_use]
pub fn shard_policy() -> ShardPolicy {
    override_slot()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .unwrap_or_else(env_policy)
}

fn threads_available() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// How many shard workers each of `tasks` queued cells should get.
///
/// `Fixed(n)` always grants `n`. `Auto` grants extra workers only when the
/// queue is tail-heavy — fewer tasks than threads, so cores would
/// otherwise idle while the stragglers finish — and caps the grant at 8
/// (diminishing returns: the router becomes the bottleneck). `Off` and a
/// saturated queue grant 1 (sequential).
#[must_use]
pub fn shard_budget(tasks: usize) -> usize {
    let budget = match shard_policy() {
        ShardPolicy::Off => 1,
        ShardPolicy::Fixed(n) => n.max(1),
        ShardPolicy::Auto => {
            let threads = threads_available();
            if tasks == 0 || tasks >= threads {
                1
            } else {
                (threads / tasks).clamp(1, 8)
            }
        }
    };
    if budget > 1 {
        obs::debug!("[shard] budget: {tasks} tasks -> {budget} shards each");
    }
    budget
}

fn runs_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| obs::metrics::counter("shard.runs"))
}

fn events_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| obs::metrics::counter("shard.events"))
}

fn busy_us_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| obs::metrics::counter("shard.busy_us"))
}

fn idle_us_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| obs::metrics::counter("shard.idle_us"))
}

fn occupancy_histogram() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| {
        obs::metrics::histogram("shard.occupancy_pct", &[10, 25, 50, 75, 90, 95, 99, 100])
    })
}

/// One routed unit of work: a per-shard slice of a source chunk plus how
/// many of its leading indirect events fall inside the global warmup
/// window.
struct Batch {
    chunk: TraceChunk,
    warmup: u64,
}

/// Batches the router may buffer per shard before blocking. Bounds memory
/// and keeps the router from racing arbitrarily far ahead of a slow shard.
const QUEUE_CAPACITY: usize = 4;

/// A bounded single-producer single-consumer batch queue (one per shard;
/// the router produces, the shard worker consumes).
struct SpscQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    space: Condvar,
}

struct QueueState {
    batches: VecDeque<Batch>,
    closed: bool,
}

impl SpscQueue {
    fn new() -> Self {
        SpscQueue {
            state: Mutex::new(QueueState {
                batches: VecDeque::with_capacity(QUEUE_CAPACITY),
                closed: false,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
        }
    }

    /// Blocks while the queue is full. Pushing after `close` drops the
    /// batch (the consumer is gone; only the error path does this).
    fn push(&self, batch: Batch) {
        let mut state = self.state.lock().expect("shard queue poisoned");
        while state.batches.len() >= QUEUE_CAPACITY && !state.closed {
            state = self.space.wait(state).expect("shard queue poisoned");
        }
        if !state.closed {
            state.batches.push_back(batch);
            self.ready.notify_one();
        }
    }

    /// Blocks until a batch arrives; `None` once the queue is closed and
    /// drained.
    fn pop(&self) -> Option<Batch> {
        let mut state = self.state.lock().expect("shard queue poisoned");
        loop {
            if let Some(batch) = state.batches.pop_front() {
                self.space.notify_one();
                return Some(batch);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("shard queue poisoned");
        }
    }

    fn close(&self) {
        let mut state = self.state.lock().expect("shard queue poisoned");
        state.closed = true;
        self.ready.notify_all();
        self.space.notify_all();
    }
}

/// Folds one batch with exactly the sequential scoring rules: the first
/// `warmup` indirect events of the batch train without scoring (they are a
/// prefix — the router attaches warmup counts to the earliest batches
/// only), every other indirect event is predict → score → update, and
/// conditional events go to `observe_cond`.
fn fold_batch(batch: &Batch, predictor: &mut dyn Predictor, stats: &mut RunStats) {
    let mut to_warm = batch.warmup;
    for event in batch.chunk.events() {
        match event {
            TraceEvent::Indirect(b) => {
                if to_warm > 0 {
                    to_warm -= 1;
                } else {
                    let predicted = predictor.predict(b.pc);
                    stats.indirect += 1;
                    if predicted != Some(b.target) {
                        stats.mispredicted += 1;
                    }
                }
                predictor.update(b.pc, b.target);
            }
            TraceEvent::Cond(b) => predictor.observe_cond(b.pc, b.outcome()),
        }
    }
    debug_assert_eq!(to_warm, 0, "router allocated more warmup than events");
}

/// The router loop: pull source chunks, allocate the global warmup prefix
/// to shards in event order, partition by site region, push batches.
fn route_events<S: EventSource + ?Sized>(
    source: &mut S,
    routing: ShardRouting,
    queues: &[SpscQueue],
    warmup: u64,
) -> Result<u64, TraceIoError> {
    let shards = queues.len();
    let mut chunk = TraceChunk::default();
    let mut parts: Vec<TraceChunk> = vec![TraceChunk::default(); shards];
    let mut warm = vec![0u64; shards];
    let mut warmup_remaining = warmup;
    let mut routed = 0u64;
    loop {
        let more = source.fill(&mut chunk, chunk_events())?;
        if warmup_remaining > 0 {
            for event in chunk.events() {
                if warmup_remaining == 0 {
                    break;
                }
                if let TraceEvent::Indirect(b) = event {
                    warm[routing.shard_of(b.pc, shards)] += 1;
                    warmup_remaining -= 1;
                }
            }
        }
        chunk.partition_by_site(
            |pc| routing.shard_of(pc, shards),
            routing.routes_cond(),
            &mut parts,
        );
        routed += chunk.indirect_count();
        for (i, part) in parts.iter_mut().enumerate() {
            if !part.is_empty() || warm[i] > 0 {
                queues[i].push(Batch {
                    chunk: std::mem::take(part),
                    warmup: std::mem::take(&mut warm[i]),
                });
            }
        }
        if !more {
            return Ok(routed);
        }
    }
}

/// Folds one event source across `shards` parallel workers and merges the
/// result — identical to the sequential
/// [`simulate_source`](crate::simulate_source) fold, provided `routing`
/// came from [`shardable`](ibp_core::PredictorConfig::shardable) on the
/// configuration that `make` builds.
///
/// Each worker constructs its own predictor via `make`; the routing
/// invariant guarantees the workers' state partitions never overlap, so
/// per-site state evolves exactly as in one sequential instance. A shard
/// count of one (or zero) falls back to the sequential fold directly.
///
/// # Errors
///
/// Propagates the source's I/O or parse failures (workers are joined
/// first; their partial stats are discarded).
pub fn simulate_source_sharded<S: EventSource + ?Sized>(
    source: &mut S,
    make: &(dyn Fn() -> Box<dyn Predictor> + Sync),
    routing: ShardRouting,
    shards: usize,
    warmup: u64,
) -> Result<RunStats, TraceIoError> {
    if shards <= 1 {
        let mut p = make();
        return simulate_source(source, p.as_mut(), warmup);
    }
    let mut span = obs::span!(
        "shard_pipeline",
        trace = source.name(),
        shards = shards,
        exponent = routing.exponent()
    );
    runs_counter().incr();
    let queues: Vec<SpscQueue> = (0..shards).map(|_| SpscQueue::new()).collect();
    let (routed, per_shard) = std::thread::scope(|scope| {
        let handles: Vec<_> = queues
            .iter()
            .enumerate()
            .map(|(i, queue)| {
                scope.spawn(move || {
                    let mut shard_span = obs::span!("shard", shard = i);
                    let mut clock = WorkClock::start();
                    let mut predictor = make();
                    let mut stats = RunStats::default();
                    let mut events = 0u64;
                    while let Some(batch) = queue.pop() {
                        events += batch.chunk.indirect_count();
                        clock.busy(|| fold_batch(&batch, predictor.as_mut(), &mut stats));
                    }
                    events_counter().add(events);
                    busy_us_counter().add(clock.busy_us());
                    idle_us_counter().add(clock.idle_us());
                    occupancy_histogram().record(clock.util_pct());
                    shard_span.note("events", events);
                    shard_span.note("busy_us", clock.busy_us());
                    shard_span.note("idle_us", clock.idle_us());
                    shard_span.note("occupancy_pct", clock.util_pct());
                    stats
                })
            })
            .collect();
        let routed = route_events(source, routing, &queues, warmup);
        for queue in &queues {
            queue.close();
        }
        let per_shard: Vec<RunStats> = handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect();
        (routed, per_shard)
    });
    let routed = routed?;
    // Merge in shard order. Both fields are u64 event counts, so the sum
    // is exact and order-independent — byte-identical to the sequential
    // fold's RunStats.
    let merged = per_shard
        .iter()
        .fold(RunStats::default(), |acc, s| acc.merged(*s));
    span.note("events", routed);
    span.note("scored", merged.indirect);
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::simulate_warm;
    use ibp_core::PredictorConfig;
    use ibp_trace::{Addr, BranchKind, Trace};

    /// A trace spread over many sites in distinct 2^2-regions, with
    /// conditionals interleaved, so every shard receives work.
    fn spread_trace(n: u64) -> Trace {
        let mut t = Trace::new("spread");
        for i in 0..n {
            let site = 0x1000 + 0x10 * (i % 23) as u32;
            let target = 0x9000 + 8 * ((i / 3) % 5) as u32;
            if i % 4 == 0 {
                t.push_cond(Addr::new(site + 4), Addr::new(0x40), i % 8 == 0);
            }
            t.push_indirect(Addr::new(site), Addr::new(target), BranchKind::VirtualCall);
        }
        t
    }

    #[test]
    fn sharded_fold_matches_sequential_fold() {
        let t = spread_trace(3_000);
        let cfg = PredictorConfig::btb_2bc();
        let routing = cfg.shardable().expect("BTB-2bc shards");
        for warmup in [0u64, 100] {
            let mut p = cfg.build();
            let expected = simulate_warm(&t, p.as_mut(), warmup);
            for shards in [1usize, 2, 4, 7] {
                let make = || cfg.build();
                let got = simulate_source_sharded(&mut t.cursor(), &make, routing, shards, warmup)
                    .expect("in-memory source");
                assert_eq!(got, expected, "shards = {shards}, warmup = {warmup}");
            }
        }
    }

    #[test]
    fn sharded_fold_matches_with_history_and_conditionals() {
        let t = spread_trace(2_000);
        let cfg = PredictorConfig::unconstrained(4)
            .with_history_sharing(ibp_core::HistorySharing::per_set(6))
            .with_cond_targets(true);
        let routing = cfg.shardable().expect("per-set history shards");
        assert!(routing.routes_cond());
        let mut p = cfg.build();
        let expected = simulate_warm(&t, p.as_mut(), 50);
        let make = || cfg.build();
        let got = simulate_source_sharded(&mut t.cursor(), &make, routing, 3, 50)
            .expect("in-memory source");
        assert_eq!(got, expected);
    }

    #[test]
    fn empty_source_merges_to_zero() {
        let t = Trace::new("empty");
        let cfg = PredictorConfig::btb();
        let routing = cfg.shardable().expect("shards");
        let make = || cfg.build();
        let got = simulate_source_sharded(&mut t.cursor(), &make, routing, 4, 0)
            .expect("in-memory source");
        assert_eq!(got, RunStats::default());
    }

    #[test]
    fn queue_closes_cleanly_when_empty() {
        let q = SpscQueue::new();
        q.close();
        assert!(q.pop().is_none());
        // Pushing after close drops the batch rather than blocking.
        q.push(Batch {
            chunk: TraceChunk::default(),
            warmup: 0,
        });
        assert!(q.pop().is_none());
    }

    #[test]
    fn queue_delivers_in_order_under_backpressure() {
        let q = SpscQueue::new();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                // More batches than QUEUE_CAPACITY: the producer must block
                // until the consumer drains.
                for i in 0..(QUEUE_CAPACITY as u64 * 3) {
                    q.push(Batch {
                        chunk: TraceChunk::default(),
                        warmup: i,
                    });
                }
                q.close();
            });
            let mut expected = 0u64;
            while let Some(batch) = q.pop() {
                assert_eq!(batch.warmup, expected);
                expected += 1;
            }
            assert_eq!(expected, QUEUE_CAPACITY as u64 * 3);
        });
    }

    #[test]
    fn override_policy_wins_over_environment() {
        override_policy(Some(ShardPolicy::Fixed(3)));
        assert_eq!(shard_policy(), ShardPolicy::Fixed(3));
        assert_eq!(shard_budget(1_000), 3, "Fixed ignores queue depth");
        override_policy(Some(ShardPolicy::Off));
        assert_eq!(shard_budget(1), 1);
        override_policy(None);
    }

    #[test]
    fn auto_budget_only_fans_out_on_a_tail_heavy_queue() {
        override_policy(Some(ShardPolicy::Auto));
        let threads = threads_available();
        // A queue deeper than the thread pool never shards.
        assert_eq!(shard_budget(threads + 1), 1);
        assert_eq!(shard_budget(0), 1);
        // A single straggler gets the whole pool (capped at 8).
        assert_eq!(shard_budget(1), threads.clamp(1, 8));
        override_policy(None);
    }
}
