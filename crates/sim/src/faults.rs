//! Deterministic fault injection for the containment layer (`IBP_FAULTS`).
//!
//! The parallel pipelines promise that a worker panic, a stalled queue or
//! a failed cache write costs wall time, never correctness: the engine
//! contains the fault and re-runs the cell on the sequential kernel fold.
//! That promise is only worth having if it is exercised, so this module
//! lets a run arm faults at *named sites* that fire at a deterministic
//! occurrence count — every failure is reproducible from the spec alone.
//!
//! # Spec grammar
//!
//! `IBP_FAULTS` is a semicolon-separated list of clauses:
//!
//! ```text
//! IBP_FAULTS="shard.worker@3;trace_cache.read;watchdog=250"
//! ```
//!
//! * `<site>` — arm `site` to fire at its first occurrence;
//! * `<site>@<n>` — arm `site` to fire at its `n`-th occurrence (1-based);
//! * `seed=<s>` — derive the occurrence for every armed site without an
//!   explicit `@<n>` from `s` (a cheap deterministic mix of seed and site
//!   name), so one integer explores many schedules reproducibly;
//! * `watchdog=<ms>` — bound every pipeline condvar wait to `ms`
//!   milliseconds (default 30000): a wait that exceeds the bound is
//!   reported as a stalled-queue fault instead of hanging the process.
//!
//! Unset or empty means injection is off (the only extra cost on hot
//! paths is one relaxed atomic load). A malformed spec warns and leaves
//! injection off — a bad knob must never corrupt a measurement run.
//!
//! Each armed site fires **exactly once** per arming: the n-th call to
//! [`should_fire`] for that site returns true, every other call false.
//! One-shot semantics are what make the engine's sequential retry safe to
//! drive under injection — the fallback never re-trips the same fault.
//!
//! The registered sites are listed in [`SITES`]; `fault_matrix` sweeps
//! all of them under every scheduling mode.

use std::any::Any;
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Duration;

/// What an armed site does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker thread panics (`fire_panic`).
    Panic,
    /// The worker stops consuming/producing without closing its queues,
    /// so progress depends on the watchdog (`should_fire` at a stall
    /// check site).
    Stall,
    /// An I/O operation fails with an injected error (`io_error`).
    Io,
}

/// One registered injection point.
#[derive(Debug, Clone, Copy)]
pub struct FaultSite {
    /// Site name as written in the spec (e.g. `shard.worker`).
    pub name: &'static str,
    /// What firing does.
    pub kind: FaultKind,
    /// Where the site lives and what failing there exercises.
    pub what: &'static str,
}

/// Every site the harness can arm. `fault_matrix` iterates this table.
pub const SITES: &[FaultSite] = &[
    FaultSite {
        name: "parallel.worker",
        kind: FaultKind::Panic,
        what: "parallel_map item fold panics; retried inline on the calling path",
    },
    FaultSite {
        name: "shard.worker",
        kind: FaultKind::Panic,
        what: "site-shard worker panics mid-batch; cell falls back to the sequential fold",
    },
    FaultSite {
        name: "shard.stall",
        kind: FaultKind::Stall,
        what: "site-shard worker stops draining its queue; router trips the watchdog",
    },
    FaultSite {
        name: "component.worker",
        kind: FaultKind::Panic,
        what: "component-fold worker panics mid-chunk; cell falls back to the sequential fold",
    },
    FaultSite {
        name: "component.stall",
        kind: FaultKind::Stall,
        what: "component-fold worker stops mid-pipeline; router/merger trips the watchdog",
    },
    FaultSite {
        name: "cache.write",
        kind: FaultKind::Io,
        what: "persistent result cache tmp write fails (ENOSPC-style); tmp cleaned, warn and continue",
    },
    FaultSite {
        name: "cache.rename",
        kind: FaultKind::Io,
        what: "persistent result cache atomic publish rename fails; tmp cleaned, warn and continue",
    },
    FaultSite {
        name: "trace_cache.write",
        kind: FaultKind::Io,
        what: "trace segment encode/write fails; falls back to direct generation",
    },
    FaultSite {
        name: "trace_cache.rename",
        kind: FaultKind::Io,
        what: "trace segment publish rename fails; tmp cleaned, falls back to direct generation",
    },
    FaultSite {
        name: "trace_cache.read",
        kind: FaultKind::Io,
        what: "trace segment verification reads corrupt; segment evicted and regenerated",
    },
    FaultSite {
        name: "journal.write",
        kind: FaultKind::Io,
        what: "journal sink write fails; journal disables itself with a warning, run continues",
    },
];

/// The registered sites (spec vocabulary), for harnesses and `--help`
/// style listings.
#[must_use]
pub fn sites() -> &'static [FaultSite] {
    SITES
}

fn site_known(name: &str) -> bool {
    SITES.iter().any(|s| s.name == name)
}

/// One armed site: fire at exactly the `fire_at`-th occurrence.
#[derive(Debug, Clone)]
struct Arm {
    fire_at: u64,
    seen: u64,
    fired: u64,
}

#[derive(Debug, Clone, Default)]
struct Plan {
    arms: HashMap<&'static str, Arm>,
    watchdog_ms: Option<u64>,
}

impl Plan {
    fn is_armed(&self) -> bool {
        !self.arms.is_empty()
    }
}

/// Default bound on pipeline condvar waits. Generous enough that no
/// honest backpressure ever trips it (a worker drains a batch in
/// microseconds), small enough that a genuinely wedged pipeline surfaces
/// as a contained fault instead of a hung sweep.
const DEFAULT_WATCHDOG_MS: u64 = 30_000;

/// Whether any fault site is armed — the hot-path gate.
static ACTIVE: AtomicBool = AtomicBool::new(false);
/// Current watchdog bound in ms (read on the queue *slow* path only).
static WATCHDOG_MS: AtomicU64 = AtomicU64::new(DEFAULT_WATCHDOG_MS);

fn plan() -> &'static Mutex<Plan> {
    static PLAN: OnceLock<Mutex<Plan>> = OnceLock::new();
    PLAN.get_or_init(|| {
        let parsed = match std::env::var("IBP_FAULTS") {
            Ok(raw) if !raw.trim().is_empty() => match parse_spec(&raw) {
                Ok(plan) => plan,
                Err(e) => {
                    eprintln!("warning: ignoring invalid IBP_FAULTS={raw:?}: {e} (injection off)");
                    Plan::default()
                }
            },
            _ => Plan::default(),
        };
        apply(&parsed);
        Mutex::new(parsed)
    })
}

fn lock_plan() -> std::sync::MutexGuard<'static, Plan> {
    plan().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Publishes a plan's derived state: the hot-path flag, the watchdog
/// bound, and the journal write-fault hook (the journal lives below this
/// crate, so injection reaches it through `ibp_obs`'s hook slot).
fn apply(p: &Plan) {
    ACTIVE.store(p.is_armed(), Ordering::Relaxed);
    WATCHDOG_MS.store(p.watchdog_ms.unwrap_or(DEFAULT_WATCHDOG_MS), Ordering::Relaxed);
    if p.arms.contains_key("journal.write") {
        ibp_obs::journal::set_fault_hook(Some(Box::new(|| io_error("journal.write"))));
    } else {
        ibp_obs::journal::set_fault_hook(None);
    }
}

/// A cheap deterministic mix (splitmix64 over seed ⊕ site bytes) mapping
/// a seed to a small 1-based occurrence, so `seed=<s>` explores early,
/// mid and late firings without hand-written `@<n>` clauses.
fn derive_occurrence(seed: u64, site: &str) -> u64 {
    let mut x = seed ^ 0x9e37_79b9_7f4a_7c15;
    for &b in site.as_bytes() {
        x = x.wrapping_add(u64::from(b)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
    }
    (x % 8) + 1
}

fn parse_spec(raw: &str) -> Result<Plan, String> {
    let mut plan = Plan::default();
    let mut seed: Option<u64> = None;
    let mut unseeded: Vec<&'static str> = Vec::new();
    for clause in raw.split(';') {
        let clause = clause.trim();
        if clause.is_empty() {
            continue;
        }
        if let Some(value) = clause.strip_prefix("watchdog=") {
            let ms: u64 = value
                .trim()
                .parse()
                .map_err(|_| format!("watchdog wants milliseconds, got {value:?}"))?;
            if ms == 0 {
                return Err("watchdog must be nonzero".to_string());
            }
            plan.watchdog_ms = Some(ms);
            continue;
        }
        if let Some(value) = clause.strip_prefix("seed=") {
            seed = Some(
                value
                    .trim()
                    .parse()
                    .map_err(|_| format!("seed wants an integer, got {value:?}"))?,
            );
            continue;
        }
        let (name, occurrence) = match clause.split_once('@') {
            Some((name, n)) => {
                let n: u64 = n
                    .trim()
                    .parse()
                    .map_err(|_| format!("occurrence in {clause:?} is not an integer"))?;
                if n == 0 {
                    return Err(format!("occurrence in {clause:?} is 1-based, got 0"));
                }
                (name.trim(), Some(n))
            }
            None => (clause, None),
        };
        let Some(site) = SITES.iter().find(|s| s.name == name) else {
            let known: Vec<&str> = SITES.iter().map(|s| s.name).collect();
            return Err(format!("unknown site {name:?} (known: {})", known.join(", ")));
        };
        match occurrence {
            Some(n) => {
                plan.arms.insert(site.name, Arm { fire_at: n, seen: 0, fired: 0 });
            }
            None => unseeded.push(site.name),
        }
    }
    for name in unseeded {
        let fire_at = seed.map_or(1, |s| derive_occurrence(s, name));
        plan.arms.insert(name, Arm { fire_at, seen: 0, fired: 0 });
    }
    Ok(plan)
}

/// Whether any site is armed. One relaxed load — the only cost injection
/// adds to an unarmed run.
#[must_use]
pub fn active() -> bool {
    // Touch the plan once so env parsing (and hook installation) happens
    // before the first hot-path check races it.
    let _ = plan();
    ACTIVE.load(Ordering::Relaxed)
}

/// Counts one occurrence of `site` and reports whether the armed fault
/// fires *now* (exactly once, at the configured occurrence).
#[must_use]
pub fn should_fire(site: &'static str) -> bool {
    debug_assert!(site_known(site), "unregistered fault site {site:?}");
    if !active() {
        return false;
    }
    let mut plan = lock_plan();
    let Some(arm) = plan.arms.get_mut(site) else {
        return false;
    };
    arm.seen += 1;
    if arm.seen == arm.fire_at {
        arm.fired += 1;
        return true;
    }
    false
}

/// Panics with a recognisable payload when `site` fires. Call from code
/// that runs under a `catch_unwind` containment boundary.
pub fn fire_panic(site: &'static str) {
    if should_fire(site) {
        panic!("injected fault: {site}");
    }
}

/// The injected I/O error when `site` fires, `None` otherwise.
#[must_use]
pub fn io_error(site: &'static str) -> Option<io::Error> {
    should_fire(site)
        .then(|| io::Error::other(format!("injected fault: {site} (no space left on device)")))
}

/// How many times `site` has fired since the plan was (re)armed.
#[must_use]
pub fn fired(site: &str) -> u64 {
    plan()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .arms
        .get(site)
        .map_or(0, |a| a.fired)
}

/// How many occurrences of `site` have been counted since the plan was
/// (re)armed. Harness plumbing: arm a site far beyond its occurrence
/// count, run clean, and `seen` tells you how many chances it had — the
/// honest way to target "the last chunk".
#[must_use]
pub fn seen(site: &str) -> u64 {
    plan()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .arms
        .get(site)
        .map_or(0, |a| a.seen)
}

/// The bound on pipeline condvar waits. Consulted only once a wait is
/// actually necessary — the uncontended queue fast path never reads it.
#[must_use]
pub fn watchdog() -> Duration {
    let _ = plan();
    Duration::from_millis(WATCHDOG_MS.load(Ordering::Relaxed))
}

/// Replaces the plan for this process: `Some(spec)` arms the spec
/// (counters zeroed), `None` restores the `IBP_FAULTS` environment
/// parse. Harness plumbing (`fault_matrix`, tests) — the env itself is
/// read once.
///
/// # Errors
///
/// Returns the parse error message for a malformed spec; the previous
/// plan stays armed.
pub fn override_spec(spec: Option<&str>) -> Result<(), String> {
    let next = match spec {
        Some(raw) => parse_spec(raw)?,
        None => match std::env::var("IBP_FAULTS") {
            Ok(raw) if !raw.trim().is_empty() => parse_spec(&raw).unwrap_or_default(),
            _ => Plan::default(),
        },
    };
    let mut guard = lock_plan();
    apply(&next);
    *guard = next;
    Ok(())
}

/// Renders a panic payload (from `catch_unwind` or a failed join) as the
/// human-readable detail string carried on the fault report.
#[must_use]
pub fn panic_detail(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_by_default_and_cheap() {
        let _guard = test_guard();
        override_spec(None).unwrap();
        assert!(!should_fire("shard.worker"));
        assert_eq!(fired("shard.worker"), 0);
    }

    #[test]
    fn fires_exactly_once_at_the_nth_occurrence() {
        let _guard = test_guard();
        override_spec(Some("shard.worker@3")).unwrap();
        assert!(!should_fire("shard.worker"));
        assert!(!should_fire("shard.worker"));
        assert!(should_fire("shard.worker"));
        assert!(!should_fire("shard.worker"));
        assert_eq!(fired("shard.worker"), 1);
        assert_eq!(seen("shard.worker"), 4);
        override_spec(None).unwrap();
    }

    #[test]
    fn unarmed_sites_do_not_fire() {
        let _guard = test_guard();
        override_spec(Some("shard.worker@1")).unwrap();
        assert!(!should_fire("component.worker"));
        assert!(io_error("cache.write").is_none());
        override_spec(None).unwrap();
    }

    #[test]
    fn io_error_carries_the_site_name() {
        let _guard = test_guard();
        override_spec(Some("cache.write")).unwrap();
        let e = io_error("cache.write").expect("armed at occurrence 1");
        assert!(e.to_string().contains("cache.write"));
        assert!(io_error("cache.write").is_none(), "one-shot");
        override_spec(None).unwrap();
    }

    #[test]
    fn watchdog_parses_and_restores() {
        let _guard = test_guard();
        override_spec(Some("shard.stall@1;watchdog=250")).unwrap();
        assert_eq!(watchdog(), Duration::from_millis(250));
        override_spec(None).unwrap();
        assert_eq!(watchdog(), Duration::from_millis(DEFAULT_WATCHDOG_MS));
    }

    #[test]
    fn seed_derives_occurrences_deterministically() {
        let _guard = test_guard();
        let a = derive_occurrence(42, "shard.worker");
        let b = derive_occurrence(42, "shard.worker");
        assert_eq!(a, b);
        assert!((1..=8).contains(&a));
        override_spec(Some("seed=42;shard.worker")).unwrap();
        for _ in 0..a.saturating_sub(1) {
            assert!(!should_fire("shard.worker"));
        }
        assert!(should_fire("shard.worker"));
        override_spec(None).unwrap();
    }

    #[test]
    fn malformed_specs_are_rejected() {
        let _guard = test_guard();
        assert!(override_spec(Some("no.such.site@1")).is_err());
        assert!(override_spec(Some("shard.worker@0")).is_err());
        assert!(override_spec(Some("watchdog=banana")).is_err());
        assert!(override_spec(Some("shard.worker@two")).is_err());
        override_spec(None).unwrap();
    }

    #[test]
    fn panic_detail_extracts_common_payloads() {
        assert_eq!(panic_detail(&"boom"), "boom");
        assert_eq!(panic_detail(&"boom".to_string()), "boom");
        assert_eq!(panic_detail(&42u32), "opaque panic payload");
    }

    #[test]
    fn every_registered_site_has_a_unique_name() {
        for (i, a) in SITES.iter().enumerate() {
            for b in &SITES[i + 1..] {
                assert_ne!(a.name, b.name);
            }
        }
    }
}
