//! The component-parallel fold for hybrid predictors.
//!
//! fig17's bounded-table hybrids dominate `repro_all` wall time, and the
//! per-site sharded pipeline ([`crate::shard`]) can never touch them:
//! bounded tables alias across site regions by construction, so
//! [`PredictorConfig::shardable`] refuses every fig17 hybrid. But a hybrid
//! has a second decomposition axis — its *components*. The two component
//! predictors never read each other's state; only the metapredictor needs
//! both, and only through each component's per-event prediction. So:
//!
//! * [`PredictorConfig::decompose`] splits the hybrid config into two
//!   standalone component configs plus a [`MetaSpec`];
//! * a **router** (the calling thread) pulls chunks from the one shared
//!   [`EventSource`] pass and broadcasts each as an [`Arc<TraceChunk>`]
//!   to both component workers over the bounded SPSC queues the shard
//!   pipeline already uses — no event payload is cloned per worker;
//! * each **component worker** owns one [`TwoLevelPredictor`] and folds
//!   every event exactly as it would inside the sequential hybrid
//!   (indirect events update, conditionals `observe_cond`), emitting one
//!   compact [`PredRecord`] per indirect event: hit/miss plus the
//!   predicted target and its confidence, captured *before* the update —
//!   precisely what the sequential predictor's `predict` would have seen;
//! * the **merge fold** (the router again, with a bounded in-flight
//!   window) replays the paired record streams through a [`MetaState`]:
//!   the confidence rule is literally `HybridPredictor::select` and the
//!   BPST selector table is the one `BpstMetaPredictor` owns, consulted
//!   and trained in the sequential `predict`-then-`update` order. The
//!   produced [`RunStats`] is therefore byte-identical to the sequential
//!   hybrid fold — not statistically close, identical.
//!
//! Records cover warmup events too: BPST selectors train on *every*
//! update, including the unscored warmup prefix, so the merge must see
//! those lookups even though it scores none of them.
//!
//! Whether a cell gets the pipeline is a scheduling decision
//! ([`component_budget`]): `IBP_COMPONENTS=0` disables it, `=n` forces it
//! regardless of core count (the equivalence tests and 1-CPU acceptance
//! runs rely on that), and `auto` (the default) engages it only on a
//! tail-heavy queue, mirroring `IBP_SHARDS`.
//!
//! With tracing on, every run emits a `component_pipeline` span, one
//! `component` span per worker (events, busy/idle split), and the
//! registry tracks `component.*` counters plus the record-buffer
//! high-water mark (`component.record_hwm`) so `obs_report --sharding`
//! can attribute the fig17 tail to its new schedule.
//!
//! [`PredictorConfig::shardable`]: ibp_core::PredictorConfig::shardable
//! [`PredictorConfig::decompose`]: ibp_core::PredictorConfig::decompose
//! [`MetaSpec`]: ibp_core::MetaSpec
//! [`MetaState`]: ibp_core::MetaState
//! [`TwoLevelPredictor`]: ibp_core::TwoLevelPredictor

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, OnceLock};

use ibp_core::snapshot::Snapshot;
use ibp_core::table::TableHit;
use ibp_core::{
    BpstMetaPredictor, Decomposition, FoldKernel, HybridPredictor, MetaSpec, MetaState, Predictor,
};
use ibp_obs as obs;
use ibp_obs::metrics::{Counter, Histogram, WorkClock};
use ibp_trace::{chunk_events, Addr, EventSource, TraceChunk, TraceEvent};

use crate::faults;
use crate::probe::{self, Attribution, ProbePayload, ProbePolicy};
use crate::run::{simulate_kernel, RunStats};
use crate::shard::{
    threads_available, PipelineError, QueueStalled, SpscQueue, WorkerFault, QUEUE_CAPACITY,
};

/// Whether hybrid cells may run the component-parallel fold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComponentPolicy {
    /// Never (`IBP_COMPONENTS=0`): hybrids fold sequentially.
    Off,
    /// Engage the pipeline when the scheduler finds idle capacity
    /// (`IBP_COMPONENTS=auto`, the default).
    Auto,
    /// Always grant this many workers to decomposable runs
    /// (`IBP_COMPONENTS=n`), regardless of core count. Values above the
    /// component count clamp — a two-component hybrid uses at most two.
    Fixed(usize),
}

fn env_policy() -> ComponentPolicy {
    static POLICY: OnceLock<ComponentPolicy> = OnceLock::new();
    *POLICY.get_or_init(|| match std::env::var("IBP_COMPONENTS") {
        Ok(raw) => match raw.as_str() {
            "auto" => ComponentPolicy::Auto,
            _ => match raw.parse::<usize>() {
                Ok(0) => ComponentPolicy::Off,
                Ok(n) => ComponentPolicy::Fixed(n),
                Err(_) => {
                    eprintln!(
                        "warning: ignoring invalid IBP_COMPONENTS={raw:?} \
                         (expected a worker count, \"auto\" or 0); using auto"
                    );
                    ComponentPolicy::Auto
                }
            },
        },
        Err(_) => ComponentPolicy::Auto,
    })
}

fn override_slot() -> &'static Mutex<Option<ComponentPolicy>> {
    static SLOT: Mutex<Option<ComponentPolicy>> = Mutex::new(None);
    &SLOT
}

/// Replaces the `IBP_COMPONENTS` policy for this process (`None` restores
/// the environment's). For tests and measurement binaries that compare
/// policies within one process — the environment variable is read once.
pub fn override_policy(policy: Option<ComponentPolicy>) {
    *override_slot()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = policy;
}

/// The active component policy: the process-wide override if one is set
/// ([`override_policy`]), else `IBP_COMPONENTS` parsed once with
/// warn-and-default (like `IBP_SHARDS`).
#[must_use]
pub fn component_policy() -> ComponentPolicy {
    override_slot()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .unwrap_or_else(env_policy)
}

/// How many component workers each of `tasks` queued cells should get.
///
/// `Fixed(n)` always grants `n` (the pipeline clamps to the component
/// count). `Auto` grants 2 — one worker per component of a two-component
/// hybrid — only when the queue is tail-heavy, the same regime
/// [`shard_budget`](crate::shard::shard_budget) fans out in. `Off` and a
/// saturated queue grant 1 (sequential).
#[must_use]
pub fn component_budget(tasks: usize) -> usize {
    let budget = match component_policy() {
        ComponentPolicy::Off => 1,
        ComponentPolicy::Fixed(n) => n.max(1),
        ComponentPolicy::Auto => {
            let threads = threads_available();
            if tasks == 0 || tasks >= threads {
                1
            } else {
                2
            }
        }
    };
    if budget > 1 {
        obs::debug!("[component] budget: {tasks} tasks -> {budget} workers each");
    }
    budget
}

fn runs_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| obs::metrics::counter("component.runs"))
}

fn events_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| obs::metrics::counter("component.events"))
}

fn busy_us_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| obs::metrics::counter("component.busy_us"))
}

fn idle_us_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| obs::metrics::counter("component.idle_us"))
}

fn occupancy_histogram() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| {
        obs::metrics::histogram("component.occupancy_pct", &[10, 25, 50, 75, 90, 95, 99, 100])
    })
}

/// One component's pre-update table lookup for one indirect event: the
/// predicted target id and its confidence, or a miss. 8 bytes per event
/// per component — the only data that crosses back from the workers.
#[derive(Debug, Clone, Copy)]
struct PredRecord {
    target: u32,
    confidence: u8,
    hit: bool,
}

impl PredRecord {
    fn pack(hit: Option<TableHit>) -> Self {
        match hit {
            Some(h) => PredRecord {
                target: h.target.raw(),
                confidence: h.confidence,
                hit: true,
            },
            None => PredRecord {
                target: 0,
                confidence: 0,
                hit: false,
            },
        }
    }

    fn unpack(self) -> Option<TableHit> {
        self.hit.then_some(TableHit {
            target: Addr::new(self.target),
            confidence: self.confidence,
        })
    }
}

/// Merge-side probe state: the metapredictor's attribution of scored
/// events plus the selector histogram captured at the warmup crossing
/// (the component workers only see their own tables; selector state lives
/// here, in the [`MetaState`]).
#[derive(Debug, Default)]
struct MergeProbe {
    attribution: Attribution,
    warm_selectors: Option<Vec<u64>>,
}

/// Rebuilds the sequential hybrid from its decomposition as a chunk-fold
/// kernel — the fallback when the budget grants no parallelism, and the
/// definition the pipeline is tested against.
fn build_sequential(d: &Decomposition) -> FoldKernel {
    let first = d
        .first
        .try_build_two_level()
        .expect("decomposed component config builds");
    let second = d
        .second
        .try_build_two_level()
        .expect("decomposed component config builds");
    match d.meta {
        MetaSpec::Confidence => FoldKernel::Hybrid(HybridPredictor::new(first, second)),
        MetaSpec::Bpst { selector_bits } => FoldKernel::Bpst(BpstMetaPredictor::with_selector_bits(
            first,
            second,
            selector_bits,
        )),
    }
}

/// Replays one broadcast chunk's paired record streams through the
/// metapredictor with the sequential scoring rules: `seen` counts every
/// indirect event against the global warmup prefix, scored events
/// arbitrate-then-score, and the selector trains on every event (that is
/// what `replay` does — arbitration is pure, training matches `update`).
struct MergeFold<'a> {
    meta: &'a mut MetaState,
    stats: &'a mut RunStats,
    seen: &'a mut u64,
    warmup: u64,
    probe: &'a mut Option<MergeProbe>,
}

fn merge_chunk(chunk: &TraceChunk, first: &[PredRecord], second: &[PredRecord], fold: &mut MergeFold) {
    debug_assert_eq!(first.len() as u64, chunk.indirect_count());
    debug_assert_eq!(second.len() as u64, chunk.indirect_count());
    for ((b, f), s) in chunk.indirect().zip(first).zip(second) {
        *fold.seen += 1;
        let predicted = fold.meta.replay(b.pc, f.unpack(), s.unpack(), b.target);
        if *fold.seen > fold.warmup {
            fold.stats.indirect += 1;
            if predicted != Some(b.target) {
                fold.stats.mispredicted += 1;
            }
            if let Some(p) = fold.probe.as_mut() {
                // Hybrids expose no key fingerprint, so no cold/capacity
                // split — exactly like the sequential fold.
                p.attribution.score(b.pc, predicted, b.target, None);
            }
        } else if *fold.seen == fold.warmup {
            if let Some(p) = fold.probe.as_mut() {
                p.warm_selectors = Some(fold.meta.selector_histogram());
            }
        }
    }
}

/// One component worker: folds every broadcast chunk into its own
/// predictor, emitting the pre-update lookup record per indirect event.
/// With probing on, returns the component's warm and end structural
/// snapshots — every worker sees the full event stream, so its state at
/// the warmup crossing is exactly the sequential hybrid's component state
/// there.
fn component_worker(
    index: usize,
    cfg: &ibp_core::PredictorConfig,
    input: &SpscQueue<Arc<TraceChunk>>,
    output: &SpscQueue<Vec<PredRecord>>,
    policy: ProbePolicy,
    warmup: u64,
) -> Result<Option<(Option<Snapshot>, Snapshot)>, WorkerFault> {
    let mut span = obs::span!("component", component = index);
    let mut clock = WorkClock::start();
    let mut predictor = cfg
        .try_build_two_level()
        .expect("decomposed component config builds");
    let mut events = 0u64;
    let probing = policy.on();
    let mut probe_seen = 0u64;
    let mut warm: Option<Snapshot> = None;
    loop {
        let chunk = match input.pop() {
            Ok(Some(chunk)) => chunk,
            Ok(None) => break,
            Err(QueueStalled) => {
                return Err(WorkerFault::stalled("component.queue", "the router"));
            }
        };
        if faults::should_fire("component.stall") {
            // An injected stall: stop consuming *without* closing either
            // queue, so the router/merger trips the watchdog — the
            // hang-containment path, not the panic path.
            return Err(WorkerFault {
                site: "component.stall",
                detail: "injected worker stall".to_string(),
            });
        }
        faults::fire_panic("component.worker");
        let records = clock.busy(|| {
            let mut records = Vec::with_capacity(chunk.indirect_count() as usize);
            for event in chunk.events() {
                match event {
                    TraceEvent::Indirect(b) => {
                        // Fused pre-update lookup + train: one key
                        // computation and (for unbounded backends) one
                        // hash probe per event, same record as
                        // `lookup` followed by `update`.
                        records.push(PredRecord::pack(predictor.fused_step(b.pc, b.target, true)));
                        if probing {
                            probe_seen += 1;
                            if probe_seen == warmup {
                                warm = predictor.snapshot();
                            }
                        }
                    }
                    TraceEvent::Cond(b) => predictor.observe_cond(b.pc, b.outcome()),
                }
            }
            records
        });
        events += records.len() as u64;
        if output.push(records).is_err() {
            return Err(WorkerFault::stalled(
                "component.queue",
                "the merge to drain this component's records",
            ));
        }
    }
    let probe = probing.then(|| {
        let end = predictor
            .snapshot()
            .expect("two-level predictors expose a snapshot");
        (warm.take(), end)
    });
    events_counter().add(events);
    busy_us_counter().add(clock.busy_us());
    idle_us_counter().add(clock.idle_us());
    occupancy_histogram().record(clock.util_pct());
    span.note("path_len", cfg.path_len() as u64);
    span.note("events", events);
    span.note("busy_us", clock.busy_us());
    span.note("idle_us", clock.idle_us());
    span.note("occupancy_pct", clock.util_pct());
    Ok(probe)
}

/// Folds one event source through a decomposed hybrid's components in
/// parallel and merges the recorded prediction streams through the
/// metapredictor — byte-identical to the sequential hybrid fold.
///
/// `workers <= 1` falls back to the sequential fold (rebuilt from the
/// decomposition); values above the component count clamp to it. The
/// chunk granularity is `IBP_CHUNK` ([`chunk_events`]); see
/// [`simulate_source_components_with_chunk`] for an explicit granularity
/// (chunk boundaries never change the result — the equivalence property
/// tests pin that down).
///
/// # Errors
///
/// [`PipelineError::Io`] propagates the source's I/O or parse failures
/// (workers are unblocked and joined first; partial records are
/// discarded). [`PipelineError::Fault`] reports a contained worker
/// failure — a caught panic or a watchdogged queue stall; the caller can
/// re-run the same fold sequentially for a byte-identical result.
pub fn simulate_source_components<S: EventSource + ?Sized>(
    source: &mut S,
    decomposition: &Decomposition,
    workers: usize,
    warmup: u64,
) -> Result<RunStats, PipelineError> {
    simulate_source_components_with_chunk(source, decomposition, workers, warmup, chunk_events())
}

/// [`simulate_source_components`] with an explicit chunk granularity.
///
/// The result is independent of `chunk` (record streams are paired with
/// their chunk, and warmup is a global event count), so this exists for
/// boundary tests and tuning, not correctness.
///
/// # Errors
///
/// Propagates the source's I/O or parse failures.
///
/// # Panics
///
/// Panics if `chunk` is zero.
pub fn simulate_source_components_with_chunk<S: EventSource + ?Sized>(
    source: &mut S,
    decomposition: &Decomposition,
    workers: usize,
    warmup: u64,
    chunk: u64,
) -> Result<RunStats, PipelineError> {
    assert!(chunk > 0, "chunk granularity must be positive");
    if workers <= 1 {
        let mut kernel = build_sequential(decomposition);
        return simulate_kernel(source, &mut kernel, warmup).map_err(PipelineError::Io);
    }
    let meta_name = match decomposition.meta {
        MetaSpec::Confidence => "confidence",
        MetaSpec::Bpst { .. } => "bpst",
    };
    let mut span = obs::span!(
        "component_pipeline",
        trace = source.name(),
        components = 2,
        meta = meta_name
    );
    runs_counter().incr();
    let policy = probe::active_policy();
    let configs = [&decomposition.first, &decomposition.second];
    let inputs: Vec<SpscQueue<Arc<TraceChunk>>> = (0..2).map(|_| SpscQueue::new()).collect();
    let outputs: Vec<SpscQueue<Vec<PredRecord>>> = (0..2).map(|_| SpscQueue::new()).collect();
    let mut meta = MetaState::new(decomposition.meta);
    let mut stats = RunStats::default();
    let mut seen = 0u64;
    let mut record_hwm = 0u64;
    let mut merge_probe = policy.on().then(MergeProbe::default);
    type WorkerProbe = Option<(Option<Snapshot>, Snapshot)>;
    let (routed, worker_probes) = std::thread::scope(
        |scope| -> Result<(u64, Vec<WorkerProbe>), PipelineError> {
            let mut handles = Vec::with_capacity(2);
            for (i, cfg) in configs.into_iter().enumerate() {
                let (input, output) = (&inputs[i], &outputs[i]);
                handles.push(scope.spawn(move || {
                    // The containment boundary: a panic anywhere in the
                    // component fold becomes a fault report, and the dying
                    // worker closes both of its queues so the router's
                    // broadcast drops and the merge sees a closed stream
                    // instead of waiting out the watchdog.
                    match catch_unwind(AssertUnwindSafe(|| {
                        component_worker(i, cfg, input, output, policy, warmup)
                    })) {
                        Ok(result) => result,
                        Err(payload) => {
                            input.close();
                            output.close();
                            Err(WorkerFault::from_panic("component.worker", payload))
                        }
                    }
                }));
            }
            // Router + merger: broadcast each freshly filled chunk (fill
            // clears its argument, and the previous chunk is still shared
            // with the workers, so every fill gets a fresh allocation), and
            // keep at most QUEUE_CAPACITY chunks in flight before merging
            // the oldest. That bound is what makes the single-threaded
            // router/merger deadlock-free: a worker never has more than
            // QUEUE_CAPACITY unmerged record buffers outstanding, so its
            // output push never blocks forever.
            let mut ring: VecDeque<Arc<TraceChunk>> = VecDeque::with_capacity(QUEUE_CAPACITY);
            let mut inflight_records = 0u64;
            let mut routed = 0u64;
            let mut merge_oldest =
                |ring: &mut VecDeque<Arc<TraceChunk>>, inflight: &mut u64| -> Result<(), WorkerFault> {
                    let chunk = ring.pop_front().expect("merge on empty ring");
                    let take = |which: usize, label: &str| match outputs[which].pop() {
                        Ok(Some(records)) => Ok(records),
                        // A closed output with no records means the worker
                        // died mid-chunk; the join below carries its real
                        // fault, this one just aborts the merge.
                        Ok(None) => Err(WorkerFault {
                            site: "component.queue",
                            detail: format!("the {label} component quit before returning records"),
                        }),
                        Err(QueueStalled) => Err(WorkerFault::stalled(
                            "component.queue",
                            &format!("the {label} component's records"),
                        )),
                    };
                    let first = take(0, "first")?;
                    let second = take(1, "second")?;
                    let mut fold = MergeFold {
                        meta: &mut meta,
                        stats: &mut stats,
                        seen: &mut seen,
                        warmup,
                        probe: &mut merge_probe,
                    };
                    merge_chunk(&chunk, &first, &second, &mut fold);
                    *inflight -= 2 * chunk.indirect_count();
                    Ok(())
                };
            let mut failure: Option<PipelineError> = None;
            'route: {
                loop {
                    let mut fresh = TraceChunk::default();
                    let more = match source.fill(&mut fresh, chunk) {
                        Ok(more) => more,
                        Err(e) => {
                            failure = Some(PipelineError::Io(e));
                            break 'route;
                        }
                    };
                    let shared = Arc::new(fresh);
                    routed += shared.indirect_count();
                    inflight_records += 2 * shared.indirect_count();
                    record_hwm = record_hwm.max(inflight_records);
                    for q in &inputs {
                        if q.push(Arc::clone(&shared)).is_err() {
                            failure = Some(PipelineError::Fault(WorkerFault::stalled(
                                "component.queue",
                                "a component to drain its input",
                            )));
                            break 'route;
                        }
                    }
                    ring.push_back(shared);
                    if ring.len() >= QUEUE_CAPACITY {
                        if let Err(f) = merge_oldest(&mut ring, &mut inflight_records) {
                            failure = Some(PipelineError::Fault(f));
                            break 'route;
                        }
                    }
                    if !more {
                        break;
                    }
                }
                for q in &inputs {
                    q.close();
                }
                while !ring.is_empty() {
                    if let Err(f) = merge_oldest(&mut ring, &mut inflight_records) {
                        failure = Some(PipelineError::Fault(f));
                        break 'route;
                    }
                }
            }
            // Shutdown: unblock both sides (idempotent on the clean path,
            // where inputs are already closed and outputs drained) so the
            // joins below are brief even after an abort.
            for q in &inputs {
                q.close();
            }
            for q in &outputs {
                q.close();
            }
            let joined: Vec<Result<WorkerProbe, WorkerFault>> = handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(result) => result,
                    // A panic that escaped the worker's own catch still
                    // joins as a fault — never a poison cascade.
                    Err(payload) => Err(WorkerFault::from_panic("component.worker", payload)),
                })
                .collect();
            // Prefer a worker's own fault over the router/merge-side
            // symptom it causes: the worker knows the true site.
            if let Some(fault) = joined.iter().find_map(|r| r.as_ref().err()) {
                return Err(PipelineError::Fault(fault.clone()));
            }
            if let Some(failure) = failure {
                return Err(failure);
            }
            let probes = joined
                .into_iter()
                .map(|r| r.expect("worker faults handled above"))
                .collect();
            Ok((routed, probes))
        },
    )?;
    if let Some(mp) = merge_probe {
        let mut probes = worker_probes.into_iter();
        let first = probes.next().flatten();
        let second = probes.next().flatten();
        if let (Some((w0, e0)), Some((w1, e1))) = (first, second) {
            // Assemble in (first, second) order with the metapredictor's
            // selector histogram — the exact shape the sequential hybrid's
            // `StructuralSnapshot` produces.
            let warm = match (w0, w1) {
                (Some(mut w), Some(rest)) => {
                    w.components.extend(rest.components);
                    w.selectors = mp.warm_selectors.unwrap_or_default();
                    Some(w)
                }
                _ => None,
            };
            let mut end = e0;
            end.components.extend(e1.components);
            end.selectors = meta.selector_histogram();
            let payload = ProbePayload {
                warm,
                end: Some(end),
                attribution: mp.attribution,
            };
            payload.emit(
                source.name(),
                &build_sequential(decomposition).as_predictor().name(),
                "component-fold",
            );
        }
    }
    obs::metrics::gauge("component.record_hwm").set(i64::try_from(record_hwm).unwrap_or(i64::MAX));
    span.note("events", routed);
    span.note("scored", stats.indirect);
    span.note("record_hwm", record_hwm);
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::simulate_warm;
    use ibp_core::PredictorConfig;
    use ibp_trace::{BranchKind, Trace};

    /// A polymorphic trace over a handful of sites with phase changes, so
    /// the two components genuinely disagree and the metapredictor state
    /// matters.
    fn phased_trace(n: u64) -> Trace {
        let mut t = Trace::new("phased");
        for i in 0..n {
            let site = 0x1000 + 0x10 * (i % 7) as u32;
            let target = if i < n / 2 {
                0x9000 + 8 * ((i / 2) % 4) as u32
            } else {
                0xA000 + 8 * (i % 3) as u32
            };
            if i % 5 == 0 {
                t.push_cond(Addr::new(site + 4), Addr::new(0x40), i % 2 == 0);
            }
            t.push_indirect(Addr::new(site), Addr::new(target), BranchKind::VirtualCall);
        }
        t
    }

    #[test]
    fn component_fold_matches_sequential_hybrid() {
        let t = phased_trace(2_000);
        for cfg in [
            PredictorConfig::hybrid(6, 2, 256, 4),
            PredictorConfig::bpst(3, 0, 128, 2),
        ] {
            let d = cfg.decompose().expect("hybrids decompose");
            for warmup in [0u64, 150] {
                let mut p = cfg.build();
                let expected = simulate_warm(&t, p.as_mut(), warmup);
                for workers in [1usize, 2, 5] {
                    let got =
                        simulate_source_components(&mut t.cursor(), &d, workers, warmup)
                            .expect("in-memory source");
                    assert_eq!(
                        got, expected,
                        "{} with {workers} workers, warmup {warmup}",
                        cfg.cache_key()
                    );
                }
            }
        }
    }

    #[test]
    fn chunk_granularity_is_invisible() {
        let t = phased_trace(500);
        let cfg = PredictorConfig::bpst(2, 0, 64, 2);
        let d = cfg.decompose().expect("decomposes");
        let mut p = cfg.build();
        let expected = simulate_warm(&t, p.as_mut(), 30);
        for chunk in [1u64, 63, 64, 65, 4096] {
            let got = simulate_source_components_with_chunk(&mut t.cursor(), &d, 2, 30, chunk)
                .expect("in-memory source");
            assert_eq!(got, expected, "chunk = {chunk}");
        }
    }

    #[test]
    fn empty_source_merges_to_zero() {
        let t = Trace::new("empty");
        let d = PredictorConfig::hybrid(3, 1, 64, 2)
            .decompose()
            .expect("decomposes");
        let got = simulate_source_components(&mut t.cursor(), &d, 2, 0)
            .expect("in-memory source");
        assert_eq!(got, RunStats::default());
    }

    #[test]
    fn record_packing_round_trips() {
        let hit = TableHit {
            target: Addr::new(0x9000),
            confidence: 3,
        };
        assert_eq!(PredRecord::pack(Some(hit)).unpack(), Some(hit));
        assert_eq!(PredRecord::pack(None).unpack(), None);
    }

    #[test]
    fn injected_worker_panic_is_contained_as_a_fault() {
        let _guard = faults::test_guard();
        faults::override_spec(Some("component.worker@1")).unwrap();
        let t = phased_trace(2_000);
        let cfg = PredictorConfig::hybrid(6, 2, 256, 4);
        let d = cfg.decompose().expect("hybrids decompose");
        let err = simulate_source_components_with_chunk(&mut t.cursor(), &d, 2, 0, 256)
            .expect_err("armed panic must surface as a pipeline error");
        match err {
            PipelineError::Fault(f) => {
                assert_eq!(f.site, "component.worker");
                assert!(f.detail.contains("injected fault"), "detail: {}", f.detail);
            }
            PipelineError::Io(e) => panic!("unexpected io error: {e}"),
        }
        faults::override_spec(None).unwrap();
        // The pipeline is intact for the sequential retry path.
        let clean = simulate_source_components_with_chunk(&mut t.cursor(), &d, 2, 0, 256)
            .expect("unfaulted rerun");
        let mut p = cfg.build();
        assert_eq!(clean, simulate_warm(&t, p.as_mut(), 0));
    }

    #[test]
    fn injected_worker_stall_is_contained_as_a_fault() {
        let _guard = faults::test_guard();
        faults::override_spec(Some("component.stall@2;watchdog=100")).unwrap();
        let t = phased_trace(2_000);
        let d = PredictorConfig::hybrid(6, 2, 256, 4)
            .decompose()
            .expect("hybrids decompose");
        let err = simulate_source_components_with_chunk(&mut t.cursor(), &d, 2, 0, 256)
            .expect_err("armed stall must surface as a pipeline error");
        match err {
            PipelineError::Fault(f) => assert_eq!(f.site, "component.stall"),
            PipelineError::Io(e) => panic!("unexpected io error: {e}"),
        }
        faults::override_spec(None).unwrap();
    }

    #[test]
    fn override_policy_wins_over_environment() {
        override_policy(Some(ComponentPolicy::Fixed(2)));
        assert_eq!(component_policy(), ComponentPolicy::Fixed(2));
        assert_eq!(component_budget(10_000), 2, "Fixed ignores queue depth");
        override_policy(Some(ComponentPolicy::Off));
        assert_eq!(component_budget(1), 1);
        override_policy(None);
    }

    #[test]
    fn auto_budget_only_fans_out_on_a_tail_heavy_queue() {
        override_policy(Some(ComponentPolicy::Auto));
        let threads = threads_available();
        assert_eq!(component_budget(threads + 1), 1);
        assert_eq!(component_budget(0), 1);
        if threads > 1 {
            assert_eq!(component_budget(1), 2, "one straggler, idle cores");
        }
        override_policy(None);
    }
}
