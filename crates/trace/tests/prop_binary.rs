//! Property-based tests for IBPB binary trace serialization.

use std::io::Cursor;

use ibp_trace::{
    collect_source, verify_binary, write_binary_source, Addr, BinarySource, BranchKind,
    EventSource, Trace, TraceChunk,
};
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = BranchKind> {
    prop_oneof![
        Just(BranchKind::VirtualCall),
        Just(BranchKind::FnPointer),
        Just(BranchKind::Switch),
    ]
}

#[derive(Debug, Clone)]
enum Record {
    Indirect(u32, u32, BranchKind),
    Cond(u32, u32, bool),
    Instr(u64),
    CondSummary(u64),
}

fn record_strategy() -> impl Strategy<Value = Record> {
    prop_oneof![
        (0u32..1 << 20, 0u32..1 << 20, kind_strategy())
            .prop_map(|(pc, t, k)| Record::Indirect(pc * 4, t * 4, k)),
        (0u32..1 << 20, 0u32..1 << 20, any::<bool>())
            .prop_map(|(pc, t, taken)| Record::Cond(pc * 4, t * 4, taken)),
        (0u64..10_000).prop_map(Record::Instr),
        (0u64..10_000).prop_map(Record::CondSummary),
    ]
}

fn build(name: &str, records: &[Record]) -> Trace {
    let mut t = Trace::new(name);
    for r in records {
        match *r {
            Record::Indirect(pc, target, kind) => {
                t.push_indirect(Addr::new(pc), Addr::new(target), kind);
            }
            Record::Cond(pc, target, taken) => {
                t.push_cond(Addr::new(pc), Addr::new(target), taken);
            }
            Record::Instr(n) => t.record_instructions(n),
            Record::CondSummary(n) => t.record_cond_summary(n),
        }
    }
    t
}

fn encode(t: &Trace) -> Vec<u8> {
    let mut buf = Cursor::new(Vec::new());
    write_binary_source(&mut t.cursor(), &mut buf).expect("encode");
    buf.into_inner()
}

/// Drains a decoder with a fixed per-fill indirect budget.
fn drain(bytes: &[u8], budget: u64) -> Trace {
    let mut src = BinarySource::new(Cursor::new(bytes)).expect("header");
    let mut out = Trace::new(src.name());
    let mut chunk = TraceChunk::default();
    loop {
        let more = src.fill(&mut chunk, budget).expect("fill");
        out.record_instructions(chunk.plain_instructions());
        out.record_cond_summary(chunk.cond_summarised());
        for event in chunk.events() {
            out.push(*event);
        }
        if !more {
            break;
        }
    }
    out
}

proptest! {
    /// Encode → decode recovers the exact event sequence and all
    /// counters, for any chunk-fill budget around the record count
    /// (1, c−1, c, c+1): chunk boundaries carry no meaning.
    #[test]
    fn round_trip_is_lossless_at_any_fill_size(
        records in proptest::collection::vec(record_strategy(), 0..200),
    ) {
        let original = build("prop", &records);
        let bytes = encode(&original);
        let c = original.indirect_count().max(2);
        for budget in [1, c - 1, c, c + 1] {
            let back = drain(&bytes, budget);
            prop_assert_eq!(back.name(), original.name());
            prop_assert_eq!(back.events(), original.events());
            prop_assert_eq!(back.indirect_count(), original.indirect_count());
            prop_assert_eq!(back.cond_count(), original.cond_count());
            prop_assert_eq!(back.instructions(), original.instructions());
        }
    }

    /// Serialization is deterministic, and re-encoding a decoded stream
    /// reproduces the original bytes.
    #[test]
    fn serialization_is_deterministic(
        records in proptest::collection::vec(record_strategy(), 0..100),
    ) {
        let t = build("prop", &records);
        let a = encode(&t);
        let b = encode(&t);
        prop_assert_eq!(&a, &b);
        let mut src = BinarySource::new(Cursor::new(&a[..])).expect("header");
        let decoded = collect_source(&mut src).expect("decode");
        prop_assert_eq!(encode(&decoded), a);
    }

    /// Arbitrary garbage never panics the decoder — it errors or parses.
    #[test]
    fn decoder_never_panics(input in proptest::collection::vec(any::<u8>(), 0..400)) {
        if let Ok(mut src) = BinarySource::new(Cursor::new(&input[..])) {
            let _ = collect_source(&mut src);
        }
        let _ = verify_binary(Cursor::new(&input[..]));
    }

    /// Any single-byte corruption of a payload is detected by the
    /// checksum or structural validation — never replayed silently.
    #[test]
    fn corrupted_payload_never_verifies(
        records in proptest::collection::vec(record_strategy(), 1..60),
        flip in any::<u16>(),
        bit in 0u8..8u8,
    ) {
        let t = build("prop", &records);
        let mut bytes = encode(&t);
        // Corrupt strictly inside the record payload (the checksum does
        // not cover the fixed header or the name).
        let payload_start = 36 + "prop".len();
        if bytes.len() > payload_start {
            let i = payload_start + usize::from(flip) % (bytes.len() - payload_start);
            bytes[i] ^= 1 << bit;
            let verdict = verify_binary(Cursor::new(&bytes[..]));
            prop_assert!(verdict.is_err(), "flipped byte {} went undetected", i);
        }
    }
}
