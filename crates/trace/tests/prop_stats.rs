//! Property-based tests for trace statistics.

use ibp_trace::{Addr, BranchKind, CoverageLevel, Trace};
use proptest::prelude::*;

fn trace_strategy() -> impl Strategy<Value = Trace> {
    proptest::collection::vec((0u32..12, 0u32..8, any::<bool>()), 0..400).prop_map(|events| {
        let mut t = Trace::new("prop");
        for (site, target, cond) in events {
            let pc = Addr::from_word(0x1000 + site);
            let target = Addr::from_word(0x8000 + target);
            if cond {
                t.push_cond(pc, target, site % 2 == 0);
            } else {
                t.push_indirect(pc, target, BranchKind::VirtualCall);
            }
        }
        t
    })
}

proptest! {
    /// Coverage is monotone in the level and bounded by the site count.
    #[test]
    fn active_sites_monotone(t in trace_strategy()) {
        let s = t.stats();
        let counts: Vec<usize> = CoverageLevel::ALL
            .iter()
            .map(|&l| s.active_sites(l))
            .collect();
        for w in counts.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        prop_assert!(counts[3] <= s.distinct_sites);
        prop_assert_eq!(counts[3] == 0, s.indirect_branches == 0);
    }

    /// Site executions sum to the trace's indirect count, and dominant
    /// counts are consistent.
    #[test]
    fn site_stats_are_consistent(t in trace_strategy()) {
        let s = t.stats();
        let total: u64 = s.sites.iter().map(|x| x.executions).sum();
        prop_assert_eq!(total, s.indirect_branches);
        for site in &s.sites {
            prop_assert!(site.executions >= 1);
            prop_assert!(site.dominant_target_executions <= site.executions);
            prop_assert!(site.distinct_targets >= 1);
            prop_assert!(u64::try_from(site.distinct_targets).unwrap() <= site.executions);
            let share = site.dominant_share();
            prop_assert!((0.0..=1.0).contains(&share));
            prop_assert_eq!(site.is_monomorphic(), site.distinct_targets == 1);
        }
        // Sites are sorted by descending execution count.
        for w in s.sites.windows(2) {
            prop_assert!(w[0].executions >= w[1].executions);
        }
    }

    /// The weighted dominant share is a proper weighted mean in [0, 1] and
    /// reaches 1 exactly when every site is monomorphic.
    #[test]
    fn dominant_share_bounds(t in trace_strategy()) {
        let s = t.stats();
        let w = s.weighted_dominant_share();
        prop_assert!((0.0..=1.0).contains(&w));
        if s.indirect_branches > 0 {
            let all_mono = s.sites.iter().all(|x| x.is_monomorphic());
            prop_assert_eq!(all_mono, (w - 1.0).abs() < 1e-12);
        }
    }

    /// Replaying a trace's events into a new trace preserves every
    /// statistic.
    #[test]
    fn replay_preserves_stats(t in trace_strategy()) {
        let mut copy = Trace::new("copy");
        copy.extend(t.events().iter().copied());
        prop_assert_eq!(copy.indirect_count(), t.indirect_count());
        prop_assert_eq!(copy.cond_count(), t.cond_count());
        let (a, b) = (t.stats(), copy.stats());
        prop_assert_eq!(a.distinct_sites, b.distinct_sites);
        prop_assert_eq!(a.sites.len(), b.sites.len());
        for level in CoverageLevel::ALL {
            prop_assert_eq!(a.active_sites(level), b.active_sites(level));
        }
    }
}
