//! Property-based tests for IBPT trace serialization.

use ibp_trace::io::{read_text, write_text};
use ibp_trace::{Addr, BranchKind, Trace};
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = BranchKind> {
    prop_oneof![
        Just(BranchKind::VirtualCall),
        Just(BranchKind::FnPointer),
        Just(BranchKind::Switch),
    ]
}

#[derive(Debug, Clone)]
enum Record {
    Indirect(u32, u32, BranchKind),
    Cond(u32, u32, bool),
    Instr(u64),
    CondSummary(u64),
}

fn record_strategy() -> impl Strategy<Value = Record> {
    prop_oneof![
        (0u32..1 << 20, 0u32..1 << 20, kind_strategy())
            .prop_map(|(pc, t, k)| Record::Indirect(pc * 4, t * 4, k)),
        (0u32..1 << 20, 0u32..1 << 20, any::<bool>())
            .prop_map(|(pc, t, taken)| Record::Cond(pc * 4, t * 4, taken)),
        (0u64..10_000).prop_map(Record::Instr),
        (0u64..10_000).prop_map(Record::CondSummary),
    ]
}

fn build(name: &str, records: &[Record]) -> Trace {
    let mut t = Trace::new(name);
    for r in records {
        match *r {
            Record::Indirect(pc, target, kind) => {
                t.push_indirect(Addr::new(pc), Addr::new(target), kind);
            }
            Record::Cond(pc, target, taken) => {
                t.push_cond(Addr::new(pc), Addr::new(target), taken);
            }
            Record::Instr(n) => t.record_instructions(n),
            Record::CondSummary(n) => t.record_cond_summary(n),
        }
    }
    t
}

proptest! {
    /// Write → read recovers the exact event sequence and all counters.
    #[test]
    fn round_trip_is_lossless(
        records in proptest::collection::vec(record_strategy(), 0..200),
    ) {
        let original = build("prop", &records);
        let mut buf = Vec::new();
        write_text(&original, &mut buf).expect("write");
        let back = read_text(&buf[..]).expect("read");
        prop_assert_eq!(back.name(), original.name());
        prop_assert_eq!(back.events(), original.events());
        prop_assert_eq!(back.indirect_count(), original.indirect_count());
        prop_assert_eq!(back.cond_count(), original.cond_count());
        prop_assert_eq!(back.instructions(), original.instructions());
    }

    /// Serialization is deterministic.
    #[test]
    fn serialization_is_deterministic(
        records in proptest::collection::vec(record_strategy(), 0..100),
    ) {
        let t = build("prop", &records);
        let mut a = Vec::new();
        let mut b = Vec::new();
        write_text(&t, &mut a).expect("write a");
        write_text(&t, &mut b).expect("write b");
        prop_assert_eq!(a, b);
    }

    /// Arbitrary garbage never panics the parser — it errors or parses.
    #[test]
    fn parser_never_panics(input in "\\PC{0,300}") {
        let _ = read_text(input.as_bytes());
    }

    /// Prepending comments and blank lines never changes the parse.
    #[test]
    fn comments_and_blanks_are_transparent(
        records in proptest::collection::vec(record_strategy(), 0..50),
        comment in "[a-z ]{0,30}",
    ) {
        let t = build("prop", &records);
        let mut buf = Vec::new();
        write_text(&t, &mut buf).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        let decorated = format!("# {comment}\n\n{text}\n# trailing\n");
        let back = read_text(decorated.as_bytes()).expect("read");
        prop_assert_eq!(back.events(), t.events());
    }
}
