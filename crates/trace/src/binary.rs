//! Binary trace serialization: the **IBPB** segment format (`.ibpb`).
//!
//! IBPT text (see [`crate::io`]) is the portable interchange format; this
//! module is its fast sibling: fixed-width binary records that bulk-decode
//! straight into [`TraceChunk`] buffers with no per-line parsing, no RNG,
//! and no hierarchy walk. It is the on-disk format of the persistent trace
//! corpus cache in `ibp-sim` (generate a benchmark trace once, replay it
//! at memory speed forever) and an opt-in `export_trace` output mode.
//!
//! # Layout
//!
//! Little-endian throughout.
//!
//! ```text
//! offset size         field
//! 0      4            magic "IBPB"
//! 4      4            format version (u32, currently 1)
//! 8      4            trace-name length in bytes (u32)
//! 12     8            record count (u64)
//! 20     8            indirect-branch record count (u64)
//! 28     8            FNV-1a 64 checksum of the record payload (u64)
//! 36     n            trace name (UTF-8, no terminator)
//! 36+n   9 * records  fixed-width records
//! ```
//!
//! Each record is 9 bytes: one tag byte plus an 8-byte payload.
//!
//! | tag | meaning                  | payload                 |
//! |-----|--------------------------|-------------------------|
//! | 0   | conditional, not taken   | pc `u32`, target `u32`  |
//! | 1   | conditional, taken       | pc `u32`, target `u32`  |
//! | 2   | indirect, virtual call   | pc `u32`, target `u32`  |
//! | 3   | indirect, fn pointer     | pc `u32`, target `u32`  |
//! | 4   | indirect, switch         | pc `u32`, target `u32`  |
//! | 5   | plain instructions       | count `u64`             |
//! | 6   | summarised conditionals  | count `u64`             |
//!
//! The writer streams any [`EventSource`] chunk by chunk — each chunk's
//! counters become tag-5/6 records ahead of its events, exactly like the
//! text writer's `instr`/`csum` lines — then seeks back to fill in the
//! counts and checksum. Chunk boundaries carry no meaning (the
//! [`EventSource`] contract), so replays chunked differently are event-
//! and counter-equivalent.
//!
//! Decoding validates structure as it goes (magic, version, tags, address
//! alignment, record counts, trailing bytes) and verifies the payload
//! checksum when the stream is fully drained; a truncated or garbled file
//! surfaces as [`TraceIoError::Corrupt`], never a panic. Consumers that
//! must not see a wrong event even *before* the end-of-stream check (the
//! trace corpus cache) run [`verify_binary`] over the file first.

use std::io::{Read, Seek, SeekFrom, Write};

use crate::io::TraceIoError;
use crate::source::{chunk_events, EventSource, TraceChunk};
use crate::{Addr, BranchKind, TraceEvent};

/// The four magic bytes every IBPB segment starts with. Format sniffers
/// (e.g. `simulate_trace` deciding between IBPT text and IBPB binary)
/// compare a file's first four bytes against this.
pub const BINARY_MAGIC: [u8; 4] = *b"IBPB";

/// Current format version; bump when the layout or record semantics
/// change. Readers reject other versions as corrupt.
pub const BINARY_FORMAT_VERSION: u32 = 1;

/// Fixed-width record size: one tag byte plus an 8-byte payload.
const RECORD_BYTES: usize = 9;

/// Header size before the variable-length name.
const HEADER_BYTES: usize = 36;

/// Names longer than this are rejected as corrupt rather than allocated —
/// no real trace name comes close, and a garbled length field must not
/// drive a giant allocation.
const MAX_NAME_BYTES: u32 = 4096;

/// Whether `prefix` (a file's first bytes) looks like an IBPB segment.
#[must_use]
pub fn looks_binary(prefix: &[u8]) -> bool {
    prefix.len() >= BINARY_MAGIC.len() && prefix[..BINARY_MAGIC.len()] == BINARY_MAGIC
}

fn corrupt(message: impl Into<String>) -> TraceIoError {
    TraceIoError::Corrupt {
        message: message.into(),
    }
}

/// Incremental FNV-1a 64 over the record payload.
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn finish(self) -> u64 {
        self.0
    }
}

fn encode_branch(tag: u8, pc: Addr, target: Addr) -> [u8; RECORD_BYTES] {
    let mut rec = [0u8; RECORD_BYTES];
    rec[0] = tag;
    rec[1..5].copy_from_slice(&pc.raw().to_le_bytes());
    rec[5..9].copy_from_slice(&target.raw().to_le_bytes());
    rec
}

fn encode_count(tag: u8, count: u64) -> [u8; RECORD_BYTES] {
    let mut rec = [0u8; RECORD_BYTES];
    rec[0] = tag;
    rec[1..9].copy_from_slice(&count.to_le_bytes());
    rec
}

fn indirect_tag(kind: BranchKind) -> u8 {
    match kind {
        BranchKind::VirtualCall => 2,
        BranchKind::FnPointer => 3,
        BranchKind::Switch => 4,
    }
}

/// Streams an [`EventSource`] into an IBPB segment, returning the total
/// bytes written (header + name + records).
///
/// The writer needs [`Seek`] because the record count, indirect count and
/// checksum are known only after the stream is drained; they are patched
/// into the header at the end. Pass `&mut writer` to keep using the
/// writer afterwards (e.g. to `sync_all` a file before renaming it into
/// place).
///
/// # Errors
///
/// Returns underlying I/O errors and the source's own failures.
pub fn write_binary_source<S, W>(source: &mut S, mut writer: W) -> Result<u64, TraceIoError>
where
    S: EventSource + ?Sized,
    W: Write + Seek,
{
    let name = source.name().as_bytes().to_vec();
    let name_len = u32::try_from(name.len())
        .ok()
        .filter(|&n| n <= MAX_NAME_BYTES)
        .ok_or_else(|| corrupt(format!("trace name too long ({} bytes)", name.len())))?;

    let start = writer.stream_position()?;
    let mut w = std::io::BufWriter::new(&mut writer);
    w.write_all(&BINARY_MAGIC)?;
    w.write_all(&BINARY_FORMAT_VERSION.to_le_bytes())?;
    w.write_all(&name_len.to_le_bytes())?;
    // Record count, indirect count, checksum: patched after the drain.
    w.write_all(&[0u8; 24])?;
    w.write_all(&name)?;

    let mut records = 0u64;
    let mut indirect = 0u64;
    let mut checksum = Fnv::new();
    let mut emit = |w: &mut std::io::BufWriter<&mut W>,
                    rec: [u8; RECORD_BYTES]|
     -> Result<(), TraceIoError> {
        checksum.update(&rec);
        records += 1;
        w.write_all(&rec)?;
        Ok(())
    };

    let mut chunk = TraceChunk::default();
    loop {
        let more = source.fill(&mut chunk, chunk_events())?;
        if chunk.plain_instructions() > 0 {
            emit(&mut w, encode_count(5, chunk.plain_instructions()))?;
        }
        if chunk.cond_summarised() > 0 {
            emit(&mut w, encode_count(6, chunk.cond_summarised()))?;
        }
        for event in chunk.events() {
            match event {
                TraceEvent::Indirect(b) => {
                    indirect += 1;
                    emit(&mut w, encode_branch(indirect_tag(b.kind), b.pc, b.target))?;
                }
                TraceEvent::Cond(b) => {
                    emit(&mut w, encode_branch(u8::from(b.taken), b.pc, b.target))?;
                }
            }
        }
        if !more {
            break;
        }
    }
    w.flush()?;
    drop(w);

    writer.seek(SeekFrom::Start(start + 12))?;
    writer.write_all(&records.to_le_bytes())?;
    writer.write_all(&indirect.to_le_bytes())?;
    writer.write_all(&checksum.finish().to_le_bytes())?;
    writer.seek(SeekFrom::End(0))?;
    Ok(HEADER_BYTES as u64 + u64::from(name_len) + records * RECORD_BYTES as u64)
}

/// A streaming IBPB reader: bulk-decodes fixed-width records into
/// [`TraceChunk`] buffers through an internal refill buffer, in memory
/// proportional to the chunk size.
///
/// Structural problems (bad tag, unaligned address, truncation, trailing
/// bytes, count mismatches) error out the moment they are seen; the
/// payload checksum is verified when the last record is consumed. Run
/// [`verify_binary`] first when a wrong event must never be observed.
pub struct BinarySource<R: Read> {
    reader: R,
    name: String,
    records_total: u64,
    records_read: u64,
    indirect_total: u64,
    indirect_read: u64,
    expected_checksum: u64,
    checksum: Fnv,
    buf: Vec<u8>,
    pos: usize,
    len: usize,
    finished: bool,
}

impl<R: Read> BinarySource<R> {
    /// Opens a reader, parsing and validating the fixed header and name.
    ///
    /// # Errors
    ///
    /// Fails with [`TraceIoError::Corrupt`] on a malformed header and
    /// [`TraceIoError::Io`] on read failures.
    pub fn new(mut reader: R) -> Result<Self, TraceIoError> {
        let mut header = [0u8; HEADER_BYTES];
        read_fully(&mut reader, &mut header, "header")?;
        if header[..4] != BINARY_MAGIC {
            return Err(corrupt("bad magic (not an IBPB segment)"));
        }
        let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if version != BINARY_FORMAT_VERSION {
            return Err(corrupt(format!(
                "unsupported format version {version} (expected {BINARY_FORMAT_VERSION})"
            )));
        }
        let name_len = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        if name_len > MAX_NAME_BYTES {
            return Err(corrupt(format!("implausible name length {name_len}")));
        }
        let records_total = u64::from_le_bytes(header[12..20].try_into().expect("8 bytes"));
        let indirect_total = u64::from_le_bytes(header[20..28].try_into().expect("8 bytes"));
        if indirect_total > records_total {
            return Err(corrupt(format!(
                "indirect count {indirect_total} exceeds record count {records_total}"
            )));
        }
        let expected_checksum = u64::from_le_bytes(header[28..36].try_into().expect("8 bytes"));
        let mut name = vec![0u8; name_len as usize];
        read_fully(&mut reader, &mut name, "name")?;
        let name = String::from_utf8(name).map_err(|_| corrupt("name is not UTF-8"))?;
        Ok(BinarySource {
            reader,
            name,
            records_total,
            records_read: 0,
            indirect_total,
            indirect_read: 0,
            expected_checksum,
            checksum: Fnv::new(),
            buf: vec![0u8; RECORD_BYTES * 4096],
            pos: 0,
            len: 0,
            finished: false,
        })
    }

    /// Buffered bytes not yet decoded.
    fn available(&self) -> usize {
        self.len - self.pos
    }

    /// Ensures at least one whole record is buffered; `false` at EOF.
    fn ensure_record(&mut self) -> Result<bool, TraceIoError> {
        while self.available() < RECORD_BYTES {
            self.buf.copy_within(self.pos..self.len, 0);
            self.len -= self.pos;
            self.pos = 0;
            let n = self.reader.read(&mut self.buf[self.len..])?;
            if n == 0 {
                return Ok(false);
            }
            self.len += n;
        }
        Ok(true)
    }

    /// End-of-stream validation: trailing bytes, counts, checksum.
    fn finish(&mut self) -> Result<(), TraceIoError> {
        if self.available() > 0 || self.reader.read(&mut [0u8; 1])? > 0 {
            return Err(corrupt(format!(
                "trailing bytes after {} records",
                self.records_total
            )));
        }
        if self.indirect_read != self.indirect_total {
            return Err(corrupt(format!(
                "indirect count mismatch: header says {}, payload has {}",
                self.indirect_total, self.indirect_read
            )));
        }
        let got = self.checksum.finish();
        if got != self.expected_checksum {
            return Err(corrupt(format!(
                "checksum mismatch: header says {:#018x}, payload hashes to {got:#018x}",
                self.expected_checksum
            )));
        }
        Ok(())
    }
}

fn read_fully<R: Read>(reader: &mut R, buf: &mut [u8], what: &str) -> Result<(), TraceIoError> {
    reader.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            corrupt(format!("truncated {what}"))
        } else {
            TraceIoError::Io(e)
        }
    })
}

fn decode_addr(bytes: &[u8]) -> Result<Addr, TraceIoError> {
    let raw = u32::from_le_bytes(bytes.try_into().expect("4 bytes"));
    Addr::try_new(raw).map_err(|e| corrupt(e.to_string()))
}

impl<R: Read> EventSource for BinarySource<R> {
    fn name(&self) -> &str {
        &self.name
    }

    fn fill(&mut self, chunk: &mut TraceChunk, max_indirect: u64) -> Result<bool, TraceIoError> {
        chunk.clear();
        if self.finished {
            return Ok(false);
        }
        let mut indirect = 0u64;
        while indirect < max_indirect && self.records_read < self.records_total {
            if !self.ensure_record()? {
                return Err(corrupt(format!(
                    "truncated payload: header says {} records, found {}",
                    self.records_total, self.records_read
                )));
            }
            let rec = &self.buf[self.pos..self.pos + RECORD_BYTES];
            self.checksum.update(rec);
            match rec[0] {
                tag @ (0 | 1) => {
                    let pc = decode_addr(&rec[1..5])?;
                    let target = decode_addr(&rec[5..9])?;
                    chunk.push_cond(pc, target, tag == 1);
                }
                tag @ 2..=4 => {
                    let pc = decode_addr(&rec[1..5])?;
                    let target = decode_addr(&rec[5..9])?;
                    let kind = match tag {
                        2 => BranchKind::VirtualCall,
                        3 => BranchKind::FnPointer,
                        _ => BranchKind::Switch,
                    };
                    chunk.push_indirect(pc, target, kind);
                    indirect += 1;
                    self.indirect_read += 1;
                }
                5 => {
                    let count = u64::from_le_bytes(rec[1..9].try_into().expect("8 bytes"));
                    chunk.record_instructions(count);
                }
                6 => {
                    let count = u64::from_le_bytes(rec[1..9].try_into().expect("8 bytes"));
                    chunk.record_cond_summary(count);
                }
                other => return Err(corrupt(format!("unknown record tag {other}"))),
            }
            self.pos += RECORD_BYTES;
            self.records_read += 1;
        }
        if self.records_read == self.records_total {
            self.finish()?;
            self.finished = true;
            return Ok(false);
        }
        Ok(true)
    }

    fn remaining_indirect(&self) -> Option<u64> {
        Some(self.indirect_total - self.indirect_read)
    }
}

/// Fully drains and validates an IBPB stream without keeping its events:
/// header structure, every record's tag and address alignment, the record
/// and indirect counts, trailing bytes, and the payload checksum. Memory
/// stays bounded by the chunk size.
///
/// # Errors
///
/// [`TraceIoError::Corrupt`] on any validation failure,
/// [`TraceIoError::Io`] on read failures.
pub fn verify_binary<R: Read>(reader: R) -> Result<(), TraceIoError> {
    let mut source = BinarySource::new(reader)?;
    let mut chunk = TraceChunk::default();
    while source.fill(&mut chunk, chunk_events())? {}
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::collect_source;
    use crate::Trace;
    use std::io::Cursor;

    fn sample() -> Trace {
        let mut t = Trace::new("sample");
        t.record_instructions(100);
        for i in 0..10u32 {
            t.push_cond(Addr::new(0x20), Addr::new(0x80), i % 2 == 0);
            t.push_indirect(
                Addr::new(0x100 + 8 * (i % 3)),
                Addr::new(0x900 + 8 * (i % 2)),
                match i % 3 {
                    0 => BranchKind::VirtualCall,
                    1 => BranchKind::FnPointer,
                    _ => BranchKind::Switch,
                },
            );
        }
        t.record_cond_summary(7);
        t.push_cond(Addr::new(0x24), Addr::new(0x90), true);
        t
    }

    fn encode(t: &Trace) -> Vec<u8> {
        let mut buf = Cursor::new(Vec::new());
        write_binary_source(&mut t.cursor(), &mut buf).expect("write");
        buf.into_inner()
    }

    #[test]
    fn round_trips_everything() {
        let t = sample();
        let buf = encode(&t);
        assert!(looks_binary(&buf));
        let back =
            collect_source(&mut BinarySource::new(&buf[..]).expect("header")).expect("decode");
        assert_eq!(back.name(), t.name());
        assert_eq!(back.events(), t.events());
        assert_eq!(back.indirect_count(), t.indirect_count());
        assert_eq!(back.cond_count(), t.cond_count());
        assert_eq!(back.instructions(), t.instructions());
    }

    #[test]
    fn writer_reports_exact_byte_count() {
        let t = sample();
        let mut buf = Cursor::new(Vec::new());
        let bytes = write_binary_source(&mut t.cursor(), &mut buf).expect("write");
        assert_eq!(bytes, buf.into_inner().len() as u64);
    }

    #[test]
    fn decode_is_chunking_invariant() {
        let t = sample();
        let buf = encode(&t);
        for max in [1, 2, 9, 10, 11, 64] {
            let mut src = BinarySource::new(&buf[..]).expect("header");
            assert_eq!(src.remaining_indirect(), Some(t.indirect_count()));
            let mut rebuilt = Trace::new(src.name().to_owned());
            let mut chunk = TraceChunk::default();
            loop {
                let more = src.fill(&mut chunk, max).expect("decode");
                assert!(chunk.indirect_count() <= max);
                rebuilt.extend_chunk(&chunk);
                if !more {
                    break;
                }
            }
            assert_eq!(rebuilt.events(), t.events(), "max_indirect = {max}");
            assert_eq!(rebuilt.instructions(), t.instructions());
            assert_eq!(rebuilt.cond_count(), t.cond_count());
        }
    }

    #[test]
    fn verify_accepts_good_segments() {
        let buf = encode(&sample());
        verify_binary(&buf[..]).expect("clean segment verifies");
    }

    #[test]
    fn truncated_payload_is_corrupt_not_a_panic() {
        let buf = encode(&sample());
        for cut in [buf.len() - 1, buf.len() - RECORD_BYTES, HEADER_BYTES + 2, 3] {
            let err = verify_binary(&buf[..cut]).expect_err("truncation detected");
            assert!(
                matches!(err, TraceIoError::Corrupt { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn bit_flips_fail_the_checksum() {
        let clean = encode(&sample());
        // Flip one bit in every payload byte position that keeps the
        // record structurally valid or not — either way verify must fail.
        let mut corrupt_count = 0;
        for pos in HEADER_BYTES + "sample".len()..clean.len() {
            let mut buf = clean.clone();
            buf[pos] ^= 0x10;
            if verify_binary(&buf[..]).is_err() {
                corrupt_count += 1;
            }
        }
        let payload = clean.len() - HEADER_BYTES - "sample".len();
        assert_eq!(corrupt_count, payload, "every payload bit flip detected");
    }

    #[test]
    fn bad_magic_version_and_tags_are_corrupt() {
        let clean = encode(&sample());
        let mut bad_magic = clean.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            BinarySource::new(&bad_magic[..]).err(),
            Some(TraceIoError::Corrupt { .. })
        ));
        let mut bad_version = clean.clone();
        bad_version[4] = 99;
        assert!(BinarySource::new(&bad_version[..]).is_err());
        let mut bad_tag = clean.clone();
        let first_record = HEADER_BYTES + "sample".len();
        bad_tag[first_record] = 7;
        assert!(verify_binary(&bad_tag[..]).is_err());
    }

    #[test]
    fn header_count_mismatches_are_corrupt() {
        let clean = encode(&sample());
        // Understate the record count: trailing bytes must be rejected.
        let mut fewer = clean.clone();
        let records = u64::from_le_bytes(clean[12..20].try_into().unwrap());
        fewer[12..20].copy_from_slice(&(records - 1).to_le_bytes());
        assert!(verify_binary(&fewer[..]).is_err());
        // Overstate it: the payload runs out early.
        let mut more = clean.clone();
        more[12..20].copy_from_slice(&(records + 1).to_le_bytes());
        assert!(verify_binary(&more[..]).is_err());
        // Wrong indirect count.
        let mut ind = clean;
        let indirect = u64::from_le_bytes(ind[20..28].try_into().unwrap());
        ind[20..28].copy_from_slice(&(indirect + 1).to_le_bytes());
        assert!(verify_binary(&ind[..]).is_err());
    }

    #[test]
    fn unaligned_address_is_corrupt() {
        let clean = encode(&sample());
        let mut buf = clean.clone();
        // First record is the tag-5 instr record (8-byte count); find the
        // first branch record and nudge its pc off alignment.
        let payload = HEADER_BYTES + "sample".len();
        let branch = (payload..clean.len())
            .step_by(RECORD_BYTES)
            .find(|&p| clean[p] < 5)
            .expect("a branch record");
        buf[branch + 1] |= 1;
        let err = verify_binary(&buf[..]).expect_err("unaligned");
        assert!(matches!(err, TraceIoError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn empty_source_round_trips() {
        let t = Trace::new("empty");
        let buf = encode(&t);
        let back =
            collect_source(&mut BinarySource::new(&buf[..]).expect("header")).expect("decode");
        assert_eq!(back.name(), "empty");
        assert_eq!(back.events(), &[]);
    }

    #[test]
    fn reencoding_a_decoded_stream_is_identical() {
        let t = sample();
        let first = encode(&t);
        let mut src = BinarySource::new(&first[..]).expect("header");
        let mut second = Cursor::new(Vec::new());
        write_binary_source(&mut src, &mut second).expect("re-encode");
        // Chunk boundaries may differ between the cursor pass and the
        // decode pass, but with both under one chunk the bytes match.
        assert_eq!(first, second.into_inner());
    }
}
