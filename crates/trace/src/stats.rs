//! Trace statistics matching the paper's benchmark tables.

use std::collections::HashMap;
use std::fmt;

use crate::io::TraceIoError;
use crate::source::{chunk_events, EventSource, TraceChunk};
use crate::{Addr, BranchKind, Trace};

/// Coverage thresholds used by the "active branch sites" columns of the
/// paper's Tables 1–2: the number of sites responsible for 90 %, 95 %, 99 %
/// and 100 % of dynamic indirect branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoverageLevel {
    /// 90 % of dynamic executions.
    P90,
    /// 95 % of dynamic executions.
    P95,
    /// 99 % of dynamic executions.
    P99,
    /// All executions.
    P100,
}

impl CoverageLevel {
    /// All levels in table order.
    pub const ALL: [CoverageLevel; 4] = [
        CoverageLevel::P90,
        CoverageLevel::P95,
        CoverageLevel::P99,
        CoverageLevel::P100,
    ];

    /// The threshold as a fraction in `(0, 1]`.
    #[must_use]
    pub fn fraction(self) -> f64 {
        match self {
            CoverageLevel::P90 => 0.90,
            CoverageLevel::P95 => 0.95,
            CoverageLevel::P99 => 0.99,
            CoverageLevel::P100 => 1.0,
        }
    }
}

impl fmt::Display for CoverageLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CoverageLevel::P90 => "90%",
            CoverageLevel::P95 => "95%",
            CoverageLevel::P99 => "99%",
            CoverageLevel::P100 => "100%",
        };
        f.write_str(s)
    }
}

/// Per-site dynamic statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteStats {
    /// The site address.
    pub pc: Addr,
    /// The construct kind of the site.
    pub kind: BranchKind,
    /// Dynamic executions of the site.
    pub executions: u64,
    /// Number of distinct targets observed.
    pub distinct_targets: usize,
    /// Executions of the single most frequent target.
    pub dominant_target_executions: u64,
}

impl SiteStats {
    /// Whether the site only ever branched to one target.
    #[must_use]
    pub fn is_monomorphic(&self) -> bool {
        self.distinct_targets <= 1
    }

    /// Fraction of executions going to the most frequent target. This bounds
    /// from above what a degenerate "always predict the commonest target"
    /// profile-based scheme could achieve at this site.
    #[must_use]
    pub fn dominant_share(&self) -> f64 {
        if self.executions == 0 {
            0.0
        } else {
            self.dominant_target_executions as f64 / self.executions as f64
        }
    }
}

/// Aggregate statistics for a whole trace — everything the paper's benchmark
/// tables (Tables 1 and 2) report, regenerable via the `table1_2` runner.
#[derive(Debug, Clone)]
pub struct TraceStats {
    /// Dynamic indirect-branch executions.
    pub indirect_branches: u64,
    /// Instructions per indirect branch.
    pub instructions_per_indirect: f64,
    /// Conditional branches per indirect branch.
    pub cond_per_indirect: f64,
    /// Fraction of dynamic indirect branches that are virtual calls
    /// (Table 1's "virt. func." column).
    pub virtual_fraction: f64,
    /// Number of distinct indirect-branch sites.
    pub distinct_sites: usize,
    /// Per-site statistics, sorted by descending execution count.
    pub sites: Vec<SiteStats>,
}

impl TraceStats {
    /// Computes statistics for a materialised trace (streams it through a
    /// [`TraceStatsBuilder`], so this is definitionally identical to the
    /// incremental path).
    #[must_use]
    pub fn compute(trace: &Trace) -> Self {
        TraceStats::from_source(&mut trace.cursor()).expect("in-memory source cannot fail")
    }

    /// Computes statistics by draining an [`EventSource`], holding only one
    /// chunk plus the per-site accumulators in memory.
    ///
    /// # Errors
    ///
    /// Propagates the source's I/O or parse failures.
    pub fn from_source<S: EventSource + ?Sized>(source: &mut S) -> Result<Self, TraceIoError> {
        let mut builder = TraceStatsBuilder::new();
        let mut chunk = TraceChunk::default();
        loop {
            let more = source.fill(&mut chunk, chunk_events())?;
            builder.record_chunk(&chunk);
            if !more {
                return Ok(builder.finish());
            }
        }
    }

    /// The number of sites needed to cover the given fraction of dynamic
    /// executions (the "active branch sites" columns of Tables 1–2).
    ///
    /// Sites are considered most-frequent first; the count is the smallest
    /// prefix whose executions reach `level`.
    #[must_use]
    pub fn active_sites(&self, level: CoverageLevel) -> usize {
        let total: u64 = self.indirect_branches;
        if total == 0 {
            return 0;
        }
        let threshold = (level.fraction() * total as f64).ceil() as u64;
        let mut covered = 0u64;
        for (i, s) in self.sites.iter().enumerate() {
            covered += s.executions;
            if covered >= threshold {
                return i + 1;
            }
        }
        self.sites.len()
    }

    /// Fraction of *sites* that are polymorphic (≥ 2 observed targets).
    #[must_use]
    pub fn polymorphic_site_fraction(&self) -> f64 {
        if self.sites.is_empty() {
            return 0.0;
        }
        let poly = self.sites.iter().filter(|s| !s.is_monomorphic()).count();
        poly as f64 / self.sites.len() as f64
    }

    /// Dynamic-execution-weighted mean of the per-site dominant-target share.
    ///
    /// `1 -` this value approximates the best case misprediction rate of a
    /// static profile-based predictor, a useful sanity bound when calibrating
    /// workloads against the paper's BTB numbers.
    #[must_use]
    pub fn weighted_dominant_share(&self) -> f64 {
        if self.indirect_branches == 0 {
            return 0.0;
        }
        let dom: u64 = self
            .sites
            .iter()
            .map(|s| s.dominant_target_executions)
            .sum();
        dom as f64 / self.indirect_branches as f64
    }
}

struct SiteAcc {
    kind: BranchKind,
    executions: u64,
    targets: HashMap<Addr, u64>,
}

/// Incremental [`TraceStats`] accumulation over [`TraceChunk`]s.
///
/// Feed every chunk of a source in order, then call
/// [`finish`](TraceStatsBuilder::finish); the result is identical to
/// [`TraceStats::compute`] on the materialised trace. Memory is bounded by
/// the number of distinct sites and targets, not the trace length.
#[derive(Default)]
pub struct TraceStatsBuilder {
    per_site: HashMap<Addr, SiteAcc>,
    virtual_execs: u64,
    indirect: u64,
    cond: u64,
    instructions: u64,
}

impl TraceStatsBuilder {
    /// An empty builder.
    #[must_use]
    pub fn new() -> Self {
        TraceStatsBuilder::default()
    }

    /// Folds one chunk's events and counters into the running statistics.
    pub fn record_chunk(&mut self, chunk: &TraceChunk) {
        for event in chunk.events() {
            if let Some(b) = event.as_indirect() {
                if b.kind == BranchKind::VirtualCall {
                    self.virtual_execs += 1;
                }
                let acc = self.per_site.entry(b.pc).or_insert_with(|| SiteAcc {
                    kind: b.kind,
                    executions: 0,
                    targets: HashMap::new(),
                });
                acc.executions += 1;
                *acc.targets.entry(b.target).or_insert(0) += 1;
            }
        }
        self.indirect += chunk.indirect_count();
        self.cond += chunk.cond_count();
        self.instructions += chunk.instructions();
    }

    /// Finalises the accumulated statistics.
    #[must_use]
    pub fn finish(self) -> TraceStats {
        let mut sites: Vec<SiteStats> = self
            .per_site
            .into_iter()
            .map(|(pc, acc)| SiteStats {
                pc,
                kind: acc.kind,
                executions: acc.executions,
                distinct_targets: acc.targets.len(),
                dominant_target_executions: acc.targets.values().copied().max().unwrap_or(0),
            })
            .collect();
        sites.sort_by(|a, b| b.executions.cmp(&a.executions).then(a.pc.cmp(&b.pc)));

        let total = self.indirect;
        let per_indirect = |count: u64| {
            if total == 0 {
                f64::INFINITY
            } else {
                count as f64 / total as f64
            }
        };
        TraceStats {
            indirect_branches: total,
            instructions_per_indirect: per_indirect(self.instructions),
            cond_per_indirect: per_indirect(self.cond),
            virtual_fraction: if total == 0 {
                0.0
            } else {
                self.virtual_execs as f64 / total as f64
            },
            distinct_sites: sites.len(),
            sites,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(pc: u32) -> Addr {
        Addr::new(pc)
    }

    fn trace_with_counts(counts: &[(u32, &[(u32, u64)])]) -> Trace {
        let mut t = Trace::new("t");
        for &(pc, targets) in counts {
            for &(target, n) in targets {
                for _ in 0..n {
                    t.push_indirect(site(pc), site(target), BranchKind::VirtualCall);
                }
            }
        }
        t
    }

    #[test]
    fn active_sites_counts_prefix() {
        // Site A: 90 execs, site B: 9, site C: 1.
        let t = trace_with_counts(&[
            (0x10, &[(0x100, 90)]),
            (0x20, &[(0x200, 9)]),
            (0x30, &[(0x300, 1)]),
        ]);
        let s = t.stats();
        assert_eq!(s.active_sites(CoverageLevel::P90), 1);
        assert_eq!(s.active_sites(CoverageLevel::P95), 2);
        assert_eq!(s.active_sites(CoverageLevel::P99), 2);
        assert_eq!(s.active_sites(CoverageLevel::P100), 3);
    }

    #[test]
    fn empty_trace_stats() {
        let s = Trace::new("e").stats();
        assert_eq!(s.indirect_branches, 0);
        assert_eq!(s.distinct_sites, 0);
        assert_eq!(s.active_sites(CoverageLevel::P90), 0);
        assert_eq!(s.polymorphic_site_fraction(), 0.0);
        assert_eq!(s.weighted_dominant_share(), 0.0);
    }

    #[test]
    fn polymorphism_and_dominance() {
        // Site A monomorphic (10 execs), site B 2 targets 6/4.
        let t = trace_with_counts(&[(0x10, &[(0x100, 10)]), (0x20, &[(0x200, 6), (0x240, 4)])]);
        let s = t.stats();
        assert_eq!(s.distinct_sites, 2);
        assert!((s.polymorphic_site_fraction() - 0.5).abs() < 1e-12);
        // dominant: 10 + 6 of 20 total.
        assert!((s.weighted_dominant_share() - 0.8).abs() < 1e-12);
        let b = s.sites.iter().find(|x| x.pc == site(0x20)).unwrap();
        assert_eq!(b.distinct_targets, 2);
        assert!((b.dominant_share() - 0.6).abs() < 1e-12);
        assert!(!b.is_monomorphic());
    }

    #[test]
    fn virtual_fraction_counts_kinds() {
        let mut t = Trace::new("k");
        t.push_indirect(site(0x10), site(0x100), BranchKind::VirtualCall);
        t.push_indirect(site(0x14), site(0x100), BranchKind::Switch);
        t.push_indirect(site(0x18), site(0x100), BranchKind::VirtualCall);
        t.push_indirect(site(0x1C), site(0x100), BranchKind::FnPointer);
        let s = t.stats();
        assert!((s.virtual_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sites_sorted_by_frequency() {
        let t = trace_with_counts(&[(0x10, &[(0x100, 1)]), (0x20, &[(0x200, 5)])]);
        let s = t.stats();
        assert_eq!(s.sites[0].pc, site(0x20));
        assert_eq!(s.sites[1].pc, site(0x10));
    }

    #[test]
    fn builder_matches_compute_at_any_chunking() {
        let mut t = trace_with_counts(&[
            (0x10, &[(0x100, 9), (0x140, 3)]),
            (0x20, &[(0x200, 5)]),
            (0x30, &[(0x300, 2), (0x340, 2), (0x380, 1)]),
        ]);
        t.record_instructions(500);
        t.record_cond_summary(30);
        let whole = t.stats();
        for max in [1, 2, 5, 100] {
            let mut cursor = t.cursor();
            let mut chunk = TraceChunk::default();
            let mut builder = TraceStatsBuilder::new();
            loop {
                let more = cursor.fill(&mut chunk, max).expect("in-memory");
                builder.record_chunk(&chunk);
                if !more {
                    break;
                }
            }
            let streamed = builder.finish();
            assert_eq!(streamed.indirect_branches, whole.indirect_branches);
            assert_eq!(streamed.sites, whole.sites, "max_indirect = {max}");
            assert!(
                (streamed.instructions_per_indirect - whole.instructions_per_indirect).abs()
                    < 1e-12
            );
            assert!((streamed.cond_per_indirect - whole.cond_per_indirect).abs() < 1e-12);
            assert!((streamed.virtual_fraction - whole.virtual_fraction).abs() < 1e-12);
        }
    }

    #[test]
    fn coverage_level_metadata() {
        assert_eq!(CoverageLevel::ALL.len(), 4);
        assert_eq!(CoverageLevel::P95.to_string(), "95%");
        assert!((CoverageLevel::P99.fraction() - 0.99).abs() < 1e-12);
    }
}
