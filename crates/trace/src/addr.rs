//! Code addresses.

use std::fmt;

/// A 32-bit, word-aligned code address.
///
/// The paper targets 32-bit SPARC, where instructions are word-aligned, so
/// the two least-significant bits of every branch and target address are
/// zero. Predictors therefore never look at bits 0–1; pattern compression
/// starts at bit 2 (the paper's parameter `a = 2`).
///
/// `Addr` keeps that invariant: the wrapped value always has bits 0–1 clear.
///
/// # Example
///
/// ```
/// use ibp_trace::Addr;
///
/// let a = Addr::new(0x0001_0040);
/// assert_eq!(a.word(), 0x0001_0040 >> 2);
/// assert_eq!(a.bits(2, 4), 0x0001_0040 >> 2 & 0xF);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u32);

/// Error returned by [`Addr::try_new`] for addresses that are not
/// word-aligned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnalignedAddrError(
    /// The offending raw address.
    pub u32,
);

impl fmt::Display for UnalignedAddrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "address {:#010x} is not word-aligned", self.0)
    }
}

impl std::error::Error for UnalignedAddrError {}

impl Addr {
    /// The all-zero address; used as a sentinel "no target" in empty history
    /// slots (the paper's predictors treat an empty history position as the
    /// zero pattern).
    pub const ZERO: Addr = Addr(0);

    /// Creates a word-aligned address.
    ///
    /// # Panics
    ///
    /// Panics if `raw` has either of its two low bits set. Use
    /// [`Addr::try_new`] for fallible construction or
    /// [`Addr::from_word`] to build from a word index.
    #[must_use]
    pub fn new(raw: u32) -> Self {
        assert!(raw & 0b11 == 0, "address {raw:#010x} is not word-aligned");
        Addr(raw)
    }

    /// Creates a word-aligned address, rejecting unaligned input.
    ///
    /// # Errors
    ///
    /// Returns [`UnalignedAddrError`] if `raw` is not a multiple of 4.
    pub fn try_new(raw: u32) -> Result<Self, UnalignedAddrError> {
        if raw & 0b11 == 0 {
            Ok(Addr(raw))
        } else {
            Err(UnalignedAddrError(raw))
        }
    }

    /// Creates an address from a word index (`word * 4`).
    ///
    /// The two high bits of `word` are discarded so the result always fits
    /// in 32 bits.
    #[must_use]
    pub fn from_word(word: u32) -> Self {
        Addr(word.wrapping_shl(2))
    }

    /// The raw 32-bit address.
    #[must_use]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The word index: the address with its (always-zero) alignment bits
    /// stripped, i.e. `raw >> 2`. This is the 30-bit quantity predictors
    /// actually key on.
    #[must_use]
    pub fn word(self) -> u32 {
        self.0 >> 2
    }

    /// Extracts `count` bits starting at bit `lo` of the raw address.
    ///
    /// `bits(2, b)` is the paper's partial-address selection `[a..a+b-1]`
    /// with `a = 2`. `count == 0` yields `0`; `count >= 32` yields all bits
    /// from `lo` up.
    #[must_use]
    pub fn bits(self, lo: u32, count: u32) -> u32 {
        if count == 0 {
            return 0;
        }
        let shifted = self.0.checked_shr(lo).unwrap_or(0);
        if count >= 32 {
            shifted
        } else {
            shifted & ((1u32 << count) - 1)
        }
    }

    /// The set identifier under the paper's sharing parameter: all addresses
    /// with identical bits `s..31` belong to one set (§3.2.1/§3.2.2).
    ///
    /// `s = 31` maps every user-space address to set 0 (fully shared /
    /// global); `s = 2` gives one set per branch site.
    #[must_use]
    pub fn set_id(self, s: u32) -> u32 {
        self.0.checked_shr(s).unwrap_or(0)
    }

    /// Returns the address offset by `words` machine words.
    #[must_use]
    pub fn offset_words(self, words: i32) -> Self {
        Addr(self.0.wrapping_add((words as u32).wrapping_shl(2)))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl From<Addr> for u32 {
    fn from(a: Addr) -> u32 {
        a.raw()
    }
}

impl TryFrom<u32> for Addr {
    type Error = UnalignedAddrError;

    fn try_from(raw: u32) -> Result<Self, Self::Error> {
        Addr::try_new(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_aligned() {
        assert_eq!(Addr::new(0).raw(), 0);
        assert_eq!(Addr::new(4).raw(), 4);
        assert_eq!(Addr::new(0xFFFF_FFFC).raw(), 0xFFFF_FFFC);
    }

    #[test]
    #[should_panic(expected = "not word-aligned")]
    fn new_rejects_unaligned() {
        let _ = Addr::new(2);
    }

    #[test]
    fn try_new_rejects_unaligned() {
        assert_eq!(Addr::try_new(3), Err(UnalignedAddrError(3)));
        assert_eq!(Addr::try_new(8), Ok(Addr::new(8)));
    }

    #[test]
    fn word_strips_alignment_bits() {
        assert_eq!(Addr::new(0x40).word(), 0x10);
        assert_eq!(Addr::from_word(0x10).raw(), 0x40);
    }

    #[test]
    fn from_word_wraps_high_bits() {
        // A word index with high bits set still produces a valid Addr.
        let a = Addr::from_word(u32::MAX);
        assert_eq!(a.raw() & 0b11, 0);
    }

    #[test]
    fn bits_selects_partial_address() {
        let a = Addr::new(0b1011_0100);
        assert_eq!(a.bits(2, 3), 0b101);
        assert_eq!(a.bits(2, 0), 0);
        assert_eq!(a.bits(0, 32), a.raw());
        assert_eq!(a.bits(31, 4), a.raw() >> 31);
    }

    #[test]
    fn bits_shift_out_of_range_is_zero() {
        assert_eq!(Addr::new(0xFFFF_FFFC).bits(32, 8), 0);
        assert_eq!(Addr::new(0xFFFF_FFFC).bits(40, 8), 0);
    }

    #[test]
    fn set_id_matches_paper_semantics() {
        let a = Addr::new(0x0001_0040);
        // s = 2: per-branch (word granularity).
        assert_eq!(a.set_id(2), a.word());
        // s = 31: global.
        assert_eq!(a.set_id(31), 0);
        // s = 9: 512-byte regions.
        let b = Addr::new(0x0001_01C0);
        assert_eq!(a.set_id(9), b.set_id(9));
        let c = Addr::new(0x0001_0240);
        assert_ne!(a.set_id(9), c.set_id(9));
        // Out-of-range shift saturates to "everything shared".
        assert_eq!(a.set_id(32), 0);
    }

    #[test]
    fn offset_words_moves_by_instructions() {
        let a = Addr::new(0x1000);
        assert_eq!(a.offset_words(1).raw(), 0x1004);
        assert_eq!(a.offset_words(-1).raw(), 0x0FFC);
    }

    #[test]
    fn display_formats_hex() {
        assert_eq!(Addr::new(0x40).to_string(), "0x00000040");
        assert_eq!(format!("{:x}", Addr::new(0x40)), "40");
        assert_eq!(format!("{:b}", Addr::new(0b100)), "100");
    }

    #[test]
    fn error_display_is_lowercase_no_punctuation() {
        let msg = UnalignedAddrError(7).to_string();
        assert!(msg.starts_with("address"));
        assert!(!msg.ends_with('.'));
    }
}
