//! Trace serialization: a simple portable format for branch traces.
//!
//! The original study consumed traces produced by the *shade* simulator.
//! This module provides the equivalent bridge for this reproduction: any
//! tool that can observe a program's indirect branches (Pin, DynamoRIO,
//! QEMU plugins, gem5, ChampSim converters, …) can emit the **IBPT** text
//! format below and be fed straight into the simulator — and traces
//! generated here can be exported for other tools.
//!
//! # Text format (`.ibpt`)
//!
//! Line oriented, `#` comments, whitespace separated:
//!
//! ```text
//! ibpt 1                     # magic + version
//! name gcc                   # optional trace name
//! instr 176                  # optional: plain instructions before next event
//! i 0x10a4 0x89f0 v          # indirect branch: pc target kind(v|f|s)
//! c 0x10c8 0x1100 t          # conditional branch: pc target taken(t|n)
//! csum 30                    # summarised conditional branches (count only)
//! ```
//!
//! Addresses are hex (with or without `0x`) and must be word-aligned. A
//! `name` record must precede the first event so that streaming readers
//! can report the trace name before any event is consumed.
//!
//! Both directions stream: [`write_text_source`] drains any
//! [`EventSource`] chunk by chunk, and [`TextSource`] parses a file
//! incrementally, so neither end ever holds a whole trace in memory.
//! [`write_text`] / [`read_text`] are the materialised convenience
//! wrappers.
//!
//! # Example
//!
//! ```
//! use ibp_trace::{Addr, BranchKind, Trace};
//! use ibp_trace::io::{read_text, write_text};
//!
//! let mut t = Trace::new("demo");
//! t.record_instructions(46);
//! t.push_indirect(Addr::new(0x1000), Addr::new(0x2000), BranchKind::VirtualCall);
//!
//! let mut buf = Vec::new();
//! write_text(&t, &mut buf)?;
//! let back = read_text(&buf[..])?;
//! assert_eq!(back.indirect_count(), 1);
//! assert_eq!(back.instructions(), t.instructions());
//! # Ok::<(), ibp_trace::io::TraceIoError>(())
//! ```

use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};

use crate::source::{chunk_events, collect_source, EventSource, TraceChunk};
use crate::{Addr, BranchKind, Trace};

/// Error reading or writing a trace file.
#[derive(Debug)]
pub enum TraceIoError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// The input is not valid IBPT: line number and message.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// A binary segment (see [`crate::binary`]) failed structural or
    /// checksum validation — truncated, garbled, or wrong counts.
    Corrupt {
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o failed: {e}"),
            TraceIoError::Parse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
            TraceIoError::Corrupt { message } => {
                write!(f, "corrupt binary trace segment: {message}")
            }
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Parse { .. } | TraceIoError::Corrupt { .. } => None,
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

fn parse_error(line: usize, message: impl Into<String>) -> TraceIoError {
    TraceIoError::Parse {
        line,
        message: message.into(),
    }
}

fn parse_addr(token: &str, line: usize) -> Result<Addr, TraceIoError> {
    let digits = token.strip_prefix("0x").unwrap_or(token);
    let raw = u32::from_str_radix(digits, 16)
        .map_err(|_| parse_error(line, format!("bad address {token:?}")))?;
    Addr::try_new(raw).map_err(|e| parse_error(line, e.to_string()))
}

fn kind_code(kind: BranchKind) -> char {
    match kind {
        BranchKind::VirtualCall => 'v',
        BranchKind::FnPointer => 'f',
        BranchKind::Switch => 's',
    }
}

fn parse_kind(token: &str, line: usize) -> Result<BranchKind, TraceIoError> {
    match token {
        "v" => Ok(BranchKind::VirtualCall),
        "f" => Ok(BranchKind::FnPointer),
        "s" => Ok(BranchKind::Switch),
        other => Err(parse_error(line, format!("bad branch kind {other:?}"))),
    }
}

/// Writes a trace in IBPT text format.
///
/// The writer receives a `W: Write` by value; pass `&mut writer` to keep
/// using it afterwards.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_text<W: Write>(trace: &Trace, writer: W) -> Result<(), TraceIoError> {
    write_text_source(&mut trace.cursor(), writer)
}

/// Streams an [`EventSource`] to IBPT text, one chunk at a time.
///
/// Each chunk's counters become `instr`/`csum` records ahead of its
/// events; gap *structure* between events is not semantically meaningful
/// to the predictors, only the totals are. A [`Trace::cursor`] source
/// produces byte-identical output to the historical whole-trace writer
/// (one front-loaded `instr` and `csum` record).
///
/// # Errors
///
/// Returns underlying I/O errors and the source's own failures.
pub fn write_text_source<S, W>(source: &mut S, writer: W) -> Result<(), TraceIoError>
where
    S: EventSource + ?Sized,
    W: Write,
{
    let mut w = io::BufWriter::new(writer);
    writeln!(w, "ibpt 1")?;
    if !source.name().is_empty() {
        writeln!(w, "name {}", source.name())?;
    }
    let mut chunk = TraceChunk::default();
    loop {
        let more = source.fill(&mut chunk, chunk_events())?;
        let plain = chunk.plain_instructions();
        if plain > 0 {
            writeln!(w, "instr {plain}")?;
        }
        if chunk.cond_summarised() > 0 {
            writeln!(w, "csum {}", chunk.cond_summarised())?;
        }
        for event in chunk.events() {
            match event {
                crate::TraceEvent::Indirect(b) => writeln!(
                    w,
                    "i {:#x} {:#x} {}",
                    b.pc.raw(),
                    b.target.raw(),
                    kind_code(b.kind)
                )?,
                crate::TraceEvent::Cond(b) => writeln!(
                    w,
                    "c {:#x} {:#x} {}",
                    b.pc.raw(),
                    b.target.raw(),
                    if b.taken { 't' } else { 'n' }
                )?,
            }
        }
        if !more {
            break;
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads a trace in IBPT text format.
///
/// # Errors
///
/// Returns [`TraceIoError::Parse`] on malformed input (with the line
/// number) and [`TraceIoError::Io`] on read failures.
pub fn read_text<R: Read>(reader: R) -> Result<Trace, TraceIoError> {
    collect_source(&mut TextSource::new(reader)?)
}

/// One parsed IBPT record.
enum Record {
    Instr(u64),
    Csum(u64),
    Indirect(Addr, Addr, BranchKind),
    Cond(Addr, Addr, bool),
}

/// A streaming IBPT reader: parses the file incrementally, handing out
/// events one [`TraceChunk`] at a time, in memory proportional to the
/// chunk size.
///
/// The header and any leading `name`/`instr`/`csum` records are consumed
/// eagerly at construction so [`EventSource::name`] is available before
/// the first event; the pre-event counters are carried by the first chunk.
pub struct TextSource<R: Read> {
    lines: io::Lines<BufReader<R>>,
    line_no: usize,
    name: String,
    pending_instr: u64,
    pending_csum: u64,
    queued: Option<Record>,
    started: bool,
    done: bool,
}

impl<R: Read> TextSource<R> {
    /// Opens a reader, parsing the `ibpt 1` header and any pre-event
    /// metadata records.
    ///
    /// # Errors
    ///
    /// Fails on a missing/invalid header or unreadable input.
    pub fn new(reader: R) -> Result<Self, TraceIoError> {
        let mut lines = BufReader::new(reader).lines();
        let mut line_no = 0usize;
        let header = loop {
            line_no += 1;
            match lines.next() {
                None => return Err(parse_error(line_no, "empty input, expected `ibpt 1`")),
                Some(l) => {
                    let l = l?;
                    let t = l.trim();
                    if !t.is_empty() && !t.starts_with('#') {
                        break t.to_string();
                    }
                }
            }
        };
        if header != "ibpt 1" {
            return Err(parse_error(
                line_no,
                format!("expected header `ibpt 1`, found {header:?}"),
            ));
        }
        let mut source = TextSource {
            lines,
            line_no,
            name: String::new(),
            pending_instr: 0,
            pending_csum: 0,
            queued: None,
            started: false,
            done: false,
        };
        // Metadata prologue: gather name/instr/csum up to the first event.
        loop {
            match source.next_record()? {
                None => break,
                Some(Record::Instr(n)) => source.pending_instr += n,
                Some(Record::Csum(n)) => source.pending_csum += n,
                Some(record) => {
                    source.queued = Some(record);
                    break;
                }
            }
        }
        Ok(source)
    }

    /// Parses lines until one yields a record; `Ok(None)` at end of input.
    /// `name` records are handled inline (valid only before any event).
    fn next_record(&mut self) -> Result<Option<Record>, TraceIoError> {
        for l in self.lines.by_ref() {
            self.line_no += 1;
            let line_no = self.line_no;
            let l = l?;
            let t = l.trim();
            if t.is_empty() || t.starts_with('#') {
                continue;
            }
            // Strip trailing comment.
            let t = t.split('#').next().unwrap_or("").trim();
            if t.is_empty() {
                continue;
            }
            let mut tok = t.split_whitespace();
            let tag = tok.next().expect("non-empty line");
            let mut need = |what: &str| {
                tok.next()
                    .ok_or_else(|| parse_error(line_no, format!("missing {what}")))
            };
            let record = match tag {
                "name" => {
                    if self.started || self.queued.is_some() {
                        return Err(parse_error(
                            line_no,
                            "name record must precede the first event",
                        ));
                    }
                    self.name = need("name")?.to_string();
                    continue;
                }
                "instr" => {
                    let n: u64 = need("count")?
                        .parse()
                        .map_err(|_| parse_error(line_no, "bad instruction count"))?;
                    Record::Instr(n)
                }
                "csum" => {
                    let n: u64 = need("count")?
                        .parse()
                        .map_err(|_| parse_error(line_no, "bad csum count"))?;
                    Record::Csum(n)
                }
                "i" => {
                    let pc = parse_addr(need("pc")?, line_no)?;
                    let target = parse_addr(need("target")?, line_no)?;
                    let kind = parse_kind(need("kind")?, line_no)?;
                    Record::Indirect(pc, target, kind)
                }
                "c" => {
                    let pc = parse_addr(need("pc")?, line_no)?;
                    let target = parse_addr(need("target")?, line_no)?;
                    let taken = match need("taken flag")? {
                        "t" => true,
                        "n" => false,
                        other => {
                            return Err(parse_error(line_no, format!("bad taken flag {other:?}")))
                        }
                    };
                    Record::Cond(pc, target, taken)
                }
                other => return Err(parse_error(line_no, format!("unknown record {other:?}"))),
            };
            return Ok(Some(record));
        }
        Ok(None)
    }
}

impl<R: Read> EventSource for TextSource<R> {
    fn name(&self) -> &str {
        &self.name
    }

    fn fill(&mut self, chunk: &mut TraceChunk, max_indirect: u64) -> Result<bool, TraceIoError> {
        chunk.clear();
        if !self.started {
            self.started = true;
            chunk.record_instructions(self.pending_instr);
            chunk.record_cond_summary(self.pending_csum);
        }
        if self.done {
            return Ok(false);
        }
        let mut indirect = 0u64;
        while indirect < max_indirect {
            let record = match self.queued.take() {
                Some(r) => r,
                None => match self.next_record()? {
                    Some(r) => r,
                    None => {
                        self.done = true;
                        return Ok(false);
                    }
                },
            };
            match record {
                Record::Instr(n) => chunk.record_instructions(n),
                Record::Csum(n) => chunk.record_cond_summary(n),
                Record::Indirect(pc, target, kind) => {
                    chunk.push_indirect(pc, target, kind);
                    indirect += 1;
                }
                Record::Cond(pc, target, taken) => chunk.push_cond(pc, target, taken),
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new("sample");
        t.record_instructions(100);
        t.push_indirect(
            Addr::new(0x1000),
            Addr::new(0x2000),
            BranchKind::VirtualCall,
        );
        t.push_cond(Addr::new(0x1010), Addr::new(0x1100), true);
        t.push_cond(Addr::new(0x1014), Addr::new(0x1200), false);
        t.push_indirect(Addr::new(0x1020), Addr::new(0x2040), BranchKind::Switch);
        t.record_cond_summary(7);
        t
    }

    fn round_trip(t: &Trace) -> Trace {
        let mut buf = Vec::new();
        write_text(t, &mut buf).expect("write");
        read_text(&buf[..]).expect("read")
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = sample();
        let back = round_trip(&t);
        assert_eq!(back.name(), t.name());
        assert_eq!(back.events(), t.events());
        assert_eq!(back.indirect_count(), t.indirect_count());
        assert_eq!(back.cond_count(), t.cond_count());
        assert_eq!(back.instructions(), t.instructions());
    }

    #[test]
    fn parses_hand_written_input() {
        let text = "\
# a comment
ibpt 1
name toy
instr 40
i 0x100 0x900 v   # with trailing comment
c 104 200 t
i 0x108 0xa00 s
csum 3
";
        let t = read_text(text.as_bytes()).expect("parse");
        assert_eq!(t.name(), "toy");
        assert_eq!(t.indirect_count(), 2);
        assert_eq!(t.cond_count(), 4); // 1 materialised + 3 summarised
        assert_eq!(t.instructions(), 40 + 3 + 3);
        let first = t.indirect().next().unwrap();
        assert_eq!(first.pc, Addr::new(0x100));
        assert_eq!(first.kind, BranchKind::VirtualCall);
    }

    #[test]
    fn rejects_bad_header() {
        let err = read_text("nope 1\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("header"));
    }

    #[test]
    fn rejects_empty_input() {
        let err = read_text("".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("empty input"));
    }

    #[test]
    fn rejects_unaligned_address_with_line_number() {
        let err = read_text("ibpt 1\ni 0x101 0x900 v\n".as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("align"), "{msg}");
    }

    #[test]
    fn rejects_unknown_record_and_bad_kind() {
        assert!(read_text("ibpt 1\nx 1 2 3\n".as_bytes()).is_err());
        assert!(read_text("ibpt 1\ni 0x100 0x200 q\n".as_bytes()).is_err());
        assert!(read_text("ibpt 1\nc 0x100 0x200 x\n".as_bytes()).is_err());
        assert!(read_text("ibpt 1\ni 0x100\n".as_bytes()).is_err());
    }

    #[test]
    fn kind_codes_round_trip() {
        for kind in BranchKind::ALL {
            let mut t = Trace::new("k");
            t.push_indirect(Addr::new(0x10), Addr::new(0x20), kind);
            let back = round_trip(&t);
            assert_eq!(back.indirect().next().unwrap().kind, kind);
        }
    }

    #[test]
    fn text_source_streams_in_bounded_chunks() {
        let t = sample();
        let mut buf = Vec::new();
        write_text(&t, &mut buf).expect("write");
        let mut source = TextSource::new(&buf[..]).expect("header");
        assert_eq!(source.name(), "sample");
        let mut rebuilt = Trace::new(source.name().to_owned());
        let mut chunk = TraceChunk::default();
        loop {
            let more = source.fill(&mut chunk, 1).expect("parse");
            assert!(chunk.indirect_count() <= 1);
            rebuilt.extend_chunk(&chunk);
            if !more {
                break;
            }
        }
        assert_eq!(rebuilt.events(), t.events());
        assert_eq!(rebuilt.instructions(), t.instructions());
        assert_eq!(rebuilt.cond_count(), t.cond_count());
    }

    #[test]
    fn streamed_writer_output_matches_whole_trace_writer() {
        let t = sample();
        let mut whole = Vec::new();
        write_text(&t, &mut whole).expect("write");
        let mut streamed = Vec::new();
        write_text_source(&mut t.cursor(), &mut streamed).expect("write");
        assert_eq!(whole, streamed);
    }

    #[test]
    fn round_trip_through_streaming_reader_and_writer() {
        let t = sample();
        let mut buf = Vec::new();
        write_text_source(&mut t.cursor(), &mut buf).expect("write");
        let mut source = TextSource::new(&buf[..]).expect("header");
        let back = crate::collect_source(&mut source).expect("read");
        assert_eq!(back.name(), t.name());
        assert_eq!(back.events(), t.events());
        assert_eq!(back.instructions(), t.instructions());
    }

    #[test]
    fn name_after_events_is_rejected() {
        let err = read_text("ibpt 1\ni 0x100 0x900 v\nname late\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("precede"), "{err}");
    }

    #[test]
    fn error_is_std_error_with_source() {
        let io_err: TraceIoError = io::Error::other("boom").into();
        assert!(std::error::Error::source(&io_err).is_some());
        let parse = parse_error(3, "x");
        assert!(std::error::Error::source(&parse).is_none());
    }
}
