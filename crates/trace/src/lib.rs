//! Trace representation for indirect-branch prediction studies.
//!
//! This crate provides the substrate that the rest of the `ibp` workspace is
//! built on: code addresses ([`Addr`]), dynamic branch events
//! ([`TraceEvent`]), whole program traces ([`Trace`]), and the static/dynamic
//! statistics the paper reports in its benchmark tables ([`TraceStats`]).
//!
//! The original study (Driesen & Hölzle, *Accurate Indirect Branch
//! Prediction*, ISCA '98) obtained traces from the *shade* instruction-level
//! simulator. Here, traces are produced synthetically by the `ibp-workload`
//! crate, but the representation is generator-agnostic: a [`Trace`] is simply
//! an ordered sequence of branch events plus an instruction count.
//!
//! # Example
//!
//! ```
//! use ibp_trace::{Addr, BranchKind, Trace};
//!
//! let mut trace = Trace::new("tiny");
//! trace.record_instructions(40);
//! trace.push_indirect(Addr::new(0x1000), Addr::new(0x2000), BranchKind::VirtualCall);
//! trace.record_instructions(55);
//! trace.push_indirect(Addr::new(0x1000), Addr::new(0x2040), BranchKind::VirtualCall);
//!
//! assert_eq!(trace.indirect_count(), 2);
//! let stats = trace.stats();
//! assert_eq!(stats.distinct_sites, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
pub mod binary;
mod event;
pub mod io;
mod source;
mod stats;
mod trace;

pub use addr::{Addr, UnalignedAddrError};
pub use binary::{looks_binary, verify_binary, write_binary_source, BinarySource};
pub use event::{BranchKind, CondBranch, IndirectBranch, TraceEvent};
pub use source::{
    chunk_events, collect_source, EventSource, TraceChunk, TraceCursor, DEFAULT_CHUNK_EVENTS,
};
pub use stats::{CoverageLevel, SiteStats, TraceStats, TraceStatsBuilder};
pub use trace::{IndirectIter, Trace};
