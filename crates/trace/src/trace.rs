//! Whole-program traces.

use crate::source::{TraceChunk, TraceCursor};
use crate::{Addr, BranchKind, CondBranch, IndirectBranch, TraceEvent, TraceStats};

/// An ordered record of a program's branch behaviour.
///
/// A trace holds every indirect-branch execution (the unit predictors are
/// scored on), optionally interleaved conditional-branch executions, and a
/// running instruction count used to compute the instructions-per-indirect
/// ratio reported in the paper's Tables 1–2.
///
/// # Example
///
/// ```
/// use ibp_trace::{Addr, BranchKind, Trace};
///
/// let mut t = Trace::new("demo");
/// t.record_instructions(10);
/// t.push_indirect(Addr::new(0x100), Addr::new(0x900), BranchKind::Switch);
/// assert_eq!(t.indirect_count(), 1);
/// // 10 recorded plus the branch instruction itself.
/// assert_eq!(t.instructions(), 11);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    name: String,
    events: Vec<TraceEvent>,
    instructions: u64,
    indirect_count: u64,
    cond_count: u64,
}

impl Trace {
    /// Creates an empty trace with the given name (e.g. a benchmark name).
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Trace {
            name: name.into(),
            ..Trace::default()
        }
    }

    /// Creates an empty trace with pre-allocated space for `events`.
    #[must_use]
    pub fn with_capacity(name: impl Into<String>, events: usize) -> Self {
        Trace {
            name: name.into(),
            events: Vec::with_capacity(events),
            ..Trace::default()
        }
    }

    /// The trace's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All events in program order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of indirect-branch executions recorded.
    #[must_use]
    pub fn indirect_count(&self) -> u64 {
        self.indirect_count
    }

    /// Number of conditional-branch executions recorded.
    #[must_use]
    pub fn cond_count(&self) -> u64 {
        self.cond_count
    }

    /// Total instructions executed (as reported via
    /// [`record_instructions`](Trace::record_instructions)).
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Whether the trace contains no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total number of events (indirect + conditional).
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Adds non-branch instructions to the running count.
    pub fn record_instructions(&mut self, count: u64) {
        self.instructions += count;
    }

    /// Appends an indirect-branch execution. Also counts one instruction
    /// (the branch itself).
    pub fn push_indirect(&mut self, pc: Addr, target: Addr, kind: BranchKind) {
        self.events
            .push(TraceEvent::Indirect(IndirectBranch { pc, target, kind }));
        self.indirect_count += 1;
        self.instructions += 1;
    }

    /// Appends a conditional-branch execution. Also counts one instruction.
    pub fn push_cond(&mut self, pc: Addr, target: Addr, taken: bool) {
        self.events
            .push(TraceEvent::Cond(CondBranch { pc, target, taken }));
        self.cond_count += 1;
        self.instructions += 1;
    }

    /// Counts `count` conditional-branch executions (and their
    /// instructions) without materialising events.
    ///
    /// Workload generators use this for programs whose cond/indirect ratio
    /// is so high (e.g. *go*'s 7123) that storing every conditional event
    /// would dwarf the indirect trace; the summarised branches still count
    /// toward [`cond_per_indirect`](Trace::cond_per_indirect) and the
    /// instruction total, they just cannot be replayed.
    pub fn record_cond_summary(&mut self, count: u64) {
        self.cond_count += count;
        self.instructions += count;
    }

    /// Appends any event.
    pub fn push(&mut self, event: TraceEvent) {
        match event {
            TraceEvent::Indirect(b) => self.push_indirect(b.pc, b.target, b.kind),
            TraceEvent::Cond(b) => self.push_cond(b.pc, b.target, b.taken),
        }
    }

    /// Appends a whole [`TraceChunk`]: its events in order plus its counter
    /// deltas (plain instructions, summarised conditionals).
    pub fn extend_chunk(&mut self, chunk: &TraceChunk) {
        self.events.extend_from_slice(chunk.events());
        self.instructions += chunk.instructions();
        self.indirect_count += chunk.indirect_count();
        self.cond_count += chunk.cond_count();
    }

    /// An [`EventSource`](crate::EventSource) replaying this trace.
    #[must_use]
    pub fn cursor(&self) -> TraceCursor<'_> {
        TraceCursor::new(self)
    }

    /// Iterates over only the indirect-branch events.
    #[must_use]
    pub fn indirect(&self) -> IndirectIter<'_> {
        IndirectIter {
            inner: self.events.iter(),
        }
    }

    /// Instructions executed per indirect branch (Tables 1–2 column).
    ///
    /// Returns `f64::INFINITY` for traces without indirect branches.
    #[must_use]
    pub fn instructions_per_indirect(&self) -> f64 {
        if self.indirect_count == 0 {
            f64::INFINITY
        } else {
            self.instructions as f64 / self.indirect_count as f64
        }
    }

    /// Conditional branches executed per indirect branch (Tables 1–2 column).
    ///
    /// Returns `f64::INFINITY` for traces without indirect branches.
    #[must_use]
    pub fn cond_per_indirect(&self) -> f64 {
        if self.indirect_count == 0 {
            f64::INFINITY
        } else {
            self.cond_count as f64 / self.indirect_count as f64
        }
    }

    /// Computes the full per-site statistics for this trace.
    ///
    /// This walks the whole trace; cache the result if used repeatedly.
    #[must_use]
    pub fn stats(&self) -> TraceStats {
        TraceStats::compute(self)
    }
}

impl Extend<TraceEvent> for Trace {
    fn extend<I: IntoIterator<Item = TraceEvent>>(&mut self, iter: I) {
        for e in iter {
            self.push(e);
        }
    }
}

/// Iterator over the indirect-branch events of a [`Trace`], produced by
/// [`Trace::indirect`].
#[derive(Debug, Clone)]
pub struct IndirectIter<'a> {
    inner: std::slice::Iter<'a, TraceEvent>,
}

impl<'a> Iterator for IndirectIter<'a> {
    type Item = &'a IndirectBranch;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.by_ref().find_map(TraceEvent::as_indirect)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, self.inner.size_hint().1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new("t");
        t.record_instructions(100);
        t.push_indirect(Addr::new(0x10), Addr::new(0x100), BranchKind::VirtualCall);
        t.push_cond(Addr::new(0x20), Addr::new(0x80), true);
        t.push_cond(Addr::new(0x24), Addr::new(0x90), false);
        t.record_instructions(47);
        t.push_indirect(Addr::new(0x10), Addr::new(0x140), BranchKind::VirtualCall);
        t
    }

    #[test]
    fn counts_track_pushes() {
        let t = sample();
        assert_eq!(t.indirect_count(), 2);
        assert_eq!(t.cond_count(), 2);
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        // 100 + 47 recorded + 4 branch instructions.
        assert_eq!(t.instructions(), 151);
    }

    #[test]
    fn ratios() {
        let t = sample();
        assert!((t.instructions_per_indirect() - 75.5).abs() < 1e-9);
        assert!((t.cond_per_indirect() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_ratios_are_infinite() {
        let t = Trace::new("empty");
        assert!(t.instructions_per_indirect().is_infinite());
        assert!(t.cond_per_indirect().is_infinite());
        assert!(t.is_empty());
    }

    #[test]
    fn indirect_iter_skips_cond() {
        let t = sample();
        let targets: Vec<_> = t.indirect().map(|b| b.target.raw()).collect();
        assert_eq!(targets, vec![0x100, 0x140]);
    }

    #[test]
    fn extend_replays_events() {
        let t = sample();
        let mut u = Trace::new("copy");
        u.extend(t.events().iter().copied());
        assert_eq!(u.indirect_count(), t.indirect_count());
        assert_eq!(u.cond_count(), t.cond_count());
        assert_eq!(u.len(), t.len());
    }

    #[test]
    fn cond_summary_counts_without_events() {
        let mut t = Trace::new("s");
        t.push_indirect(Addr::new(0x10), Addr::new(0x100), BranchKind::Switch);
        t.record_cond_summary(99);
        assert_eq!(t.cond_count(), 99);
        assert_eq!(t.len(), 1); // no events materialised
        assert!((t.cond_per_indirect() - 99.0).abs() < 1e-12);
        assert_eq!(t.instructions(), 100);
    }

    #[test]
    fn push_generic_event_dispatches() {
        let mut t = Trace::new("g");
        t.push(TraceEvent::Indirect(IndirectBranch {
            pc: Addr::new(0x4),
            target: Addr::new(0x8),
            kind: BranchKind::Switch,
        }));
        assert_eq!(t.indirect_count(), 1);
    }
}
