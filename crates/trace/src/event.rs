//! Dynamic branch events.

use std::fmt;

use crate::Addr;

/// The source-level construct an indirect branch implements.
///
/// The paper's benchmark tables distinguish virtual function calls from other
/// indirect branches (function-pointer calls, `switch` jump tables); the
/// workload generator tags each site accordingly so the "% virtual" column of
/// Table 1 can be regenerated. Procedure returns are excluded from traces
/// entirely, as in the paper (they are served by a return-address stack).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BranchKind {
    /// A virtual function call dispatched through a vtable.
    VirtualCall,
    /// An indirect call through a function pointer.
    FnPointer,
    /// An indirect jump implementing a `switch` statement.
    Switch,
}

impl BranchKind {
    /// All kinds, in declaration order.
    pub const ALL: [BranchKind; 3] = [
        BranchKind::VirtualCall,
        BranchKind::FnPointer,
        BranchKind::Switch,
    ];
}

impl fmt::Display for BranchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BranchKind::VirtualCall => "virtual call",
            BranchKind::FnPointer => "fn pointer",
            BranchKind::Switch => "switch",
        };
        f.write_str(s)
    }
}

/// One dynamic execution of an indirect branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IndirectBranch {
    /// Address of the branch instruction (the *site*).
    pub pc: Addr,
    /// Address control transferred to.
    pub target: Addr,
    /// What kind of construct the site implements.
    pub kind: BranchKind,
}

/// One dynamic execution of a conditional direct branch.
///
/// Conditional branches are not predicted by this crate's predictors; they
/// appear in traces only so that (a) the cond/indirect ratio of the paper's
/// benchmark tables can be measured and (b) the §3.3 variation — polluting
/// the indirect history with conditional targets — can be simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CondBranch {
    /// Address of the branch instruction.
    pub pc: Addr,
    /// Branch target if taken (fall-through address otherwise).
    pub target: Addr,
    /// Whether the branch was taken.
    pub taken: bool,
}

impl CondBranch {
    /// The address execution continued at: `target` when taken, the
    /// fall-through (next word) otherwise.
    #[must_use]
    pub fn outcome(&self) -> Addr {
        if self.taken {
            self.target
        } else {
            self.pc.offset_words(1)
        }
    }
}

/// A single event in a program trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceEvent {
    /// An indirect branch execution — the events predictors are measured on.
    Indirect(IndirectBranch),
    /// A conditional branch execution — context only (§3.3).
    Cond(CondBranch),
}

impl TraceEvent {
    /// The indirect branch, if this event is one.
    #[must_use]
    pub fn as_indirect(&self) -> Option<&IndirectBranch> {
        match self {
            TraceEvent::Indirect(b) => Some(b),
            TraceEvent::Cond(_) => None,
        }
    }

    /// The conditional branch, if this event is one.
    #[must_use]
    pub fn as_cond(&self) -> Option<&CondBranch> {
        match self {
            TraceEvent::Cond(b) => Some(b),
            TraceEvent::Indirect(_) => None,
        }
    }

    /// The site address of the event, whatever its kind.
    #[must_use]
    pub fn pc(&self) -> Addr {
        match self {
            TraceEvent::Indirect(b) => b.pc,
            TraceEvent::Cond(b) => b.pc,
        }
    }
}

impl From<IndirectBranch> for TraceEvent {
    fn from(b: IndirectBranch) -> Self {
        TraceEvent::Indirect(b)
    }
}

impl From<CondBranch> for TraceEvent {
    fn from(b: CondBranch) -> Self {
        TraceEvent::Cond(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_outcome_taken_vs_not() {
        let b = CondBranch {
            pc: Addr::new(0x100),
            target: Addr::new(0x200),
            taken: true,
        };
        assert_eq!(b.outcome(), Addr::new(0x200));
        let nt = CondBranch { taken: false, ..b };
        assert_eq!(nt.outcome(), Addr::new(0x104));
    }

    #[test]
    fn event_accessors() {
        let ib = IndirectBranch {
            pc: Addr::new(0x100),
            target: Addr::new(0x200),
            kind: BranchKind::Switch,
        };
        let e = TraceEvent::from(ib);
        assert_eq!(e.as_indirect(), Some(&ib));
        assert_eq!(e.as_cond(), None);
        assert_eq!(e.pc(), Addr::new(0x100));

        let cb = CondBranch {
            pc: Addr::new(0x300),
            target: Addr::new(0x400),
            taken: false,
        };
        let e = TraceEvent::from(cb);
        assert_eq!(e.as_cond(), Some(&cb));
        assert_eq!(e.as_indirect(), None);
        assert_eq!(e.pc(), Addr::new(0x300));
    }

    #[test]
    fn kind_display() {
        assert_eq!(BranchKind::VirtualCall.to_string(), "virtual call");
        assert_eq!(BranchKind::ALL.len(), 3);
    }
}
