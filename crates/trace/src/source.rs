//! Pull-based chunked event sources.
//!
//! A [`Trace`] materialises every event in memory, which caps run length:
//! at the paper's multi-million-event trace sizes a `Vec<TraceEvent>` per
//! benchmark (times one clone per sweep cell) dominates RSS. An
//! [`EventSource`] instead hands out events a bounded [`TraceChunk`] at a
//! time, so consumers — the simulator fold, the stats builder, the text
//! writer — run in memory proportional to the chunk size, not the trace
//! length.
//!
//! Two contracts make a source interchangeable with the trace it streams:
//!
//! * **Event equivalence** — concatenating the chunks yields exactly the
//!   event sequence of the materialised trace, in order. Chunk *boundaries*
//!   carry no meaning; any split of the same stream is equivalent.
//! * **Counter equivalence** — summing each chunk's instruction /
//!   conditional-summary counters reproduces the materialised trace's
//!   totals. Sources place whole-trace counters (e.g. a trace file's
//!   front-loaded `instr` line) in their first chunk.

use crate::io::TraceIoError;
use crate::{Addr, BranchKind, CondBranch, IndirectBranch, Trace, TraceEvent};

/// Default maximum indirect branches per chunk when the `IBP_CHUNK`
/// environment variable is unset.
pub const DEFAULT_CHUNK_EVENTS: u64 = 8_192;

/// The chunk granularity for streaming consumers: `IBP_CHUNK` (indirect
/// branches per chunk, read once per process) or
/// [`DEFAULT_CHUNK_EVENTS`]. Values of zero are rejected like parse
/// errors — a zero-sized chunk cannot make progress.
#[must_use]
pub fn chunk_events() -> u64 {
    static CHUNK: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *CHUNK.get_or_init(|| match std::env::var("IBP_CHUNK") {
        Ok(raw) => match raw.parse() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!(
                    "warning: ignoring invalid IBP_CHUNK={raw:?} \
                     (expected a positive integer); using {DEFAULT_CHUNK_EVENTS}"
                );
                DEFAULT_CHUNK_EVENTS
            }
        },
        Err(_) => DEFAULT_CHUNK_EVENTS,
    })
}

/// A bounded window of trace events plus the counter deltas that belong to
/// it — the unit an [`EventSource`] produces.
///
/// The counter methods mirror [`Trace`] exactly (a branch event counts its
/// own instruction, summarised conditionals count without materialising),
/// so replaying every chunk into a trace reproduces the trace's counters.
#[derive(Debug, Clone, Default)]
pub struct TraceChunk {
    events: Vec<TraceEvent>,
    instructions: u64,
    indirect_count: u64,
    cond_count: u64,
    cond_summarised: u64,
}

impl TraceChunk {
    /// An empty chunk with space reserved for `events` events.
    #[must_use]
    pub fn with_capacity(events: usize) -> Self {
        TraceChunk {
            events: Vec::with_capacity(events),
            ..TraceChunk::default()
        }
    }

    /// Empties the chunk, keeping its allocation for reuse.
    pub fn clear(&mut self) {
        self.events.clear();
        self.instructions = 0;
        self.indirect_count = 0;
        self.cond_count = 0;
        self.cond_summarised = 0;
    }

    /// The events of this window, in program order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Iterates over only the indirect-branch events, in order. Merge
    /// folds that pair a broadcast chunk with per-component prediction
    /// records (one record per indirect event) walk this.
    pub fn indirect(&self) -> impl Iterator<Item = &IndirectBranch> {
        self.events.iter().filter_map(TraceEvent::as_indirect)
    }

    /// Whether the chunk carries neither events nor counters.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.instructions == 0 && self.cond_count == 0
    }

    /// Number of events (indirect + conditional) in the chunk.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Indirect-branch executions in this chunk.
    #[must_use]
    pub fn indirect_count(&self) -> u64 {
        self.indirect_count
    }

    /// Conditional-branch executions in this chunk (materialised plus
    /// summarised).
    #[must_use]
    pub fn cond_count(&self) -> u64 {
        self.cond_count
    }

    /// Conditional executions counted without materialised events.
    #[must_use]
    pub fn cond_summarised(&self) -> u64 {
        self.cond_summarised
    }

    /// Instructions attributed to this chunk (branches included).
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Instructions that are neither materialised events nor summarised
    /// conditionals — what a text writer emits as an `instr` line.
    #[must_use]
    pub fn plain_instructions(&self) -> u64 {
        self.instructions - self.events.len() as u64 - self.cond_summarised
    }

    /// Adds non-branch instructions to the chunk's count.
    pub fn record_instructions(&mut self, count: u64) {
        self.instructions += count;
    }

    /// Appends an indirect-branch execution (counts one instruction).
    pub fn push_indirect(&mut self, pc: Addr, target: Addr, kind: BranchKind) {
        self.events
            .push(TraceEvent::Indirect(IndirectBranch { pc, target, kind }));
        self.indirect_count += 1;
        self.instructions += 1;
    }

    /// Appends a conditional-branch execution (counts one instruction).
    pub fn push_cond(&mut self, pc: Addr, target: Addr, taken: bool) {
        self.events
            .push(TraceEvent::Cond(CondBranch { pc, target, taken }));
        self.cond_count += 1;
        self.instructions += 1;
    }

    /// Counts `count` conditional executions (and instructions) without
    /// materialising events.
    pub fn record_cond_summary(&mut self, count: u64) {
        self.cond_count += count;
        self.cond_summarised += count;
        self.instructions += count;
    }

    /// Appends any event.
    pub fn push(&mut self, event: TraceEvent) {
        match event {
            TraceEvent::Indirect(b) => self.push_indirect(b.pc, b.target, b.kind),
            TraceEvent::Cond(b) => self.push_cond(b.pc, b.target, b.taken),
        }
    }

    /// Splits this chunk's events into per-shard chunks by branch site:
    /// each event is appended to `out[route(pc)]`, preserving program
    /// order within every shard (the partition view a sharded simulator
    /// consumes).
    ///
    /// When `route_cond` is `false`, conditional events are counted as a
    /// summary on their routed shard instead of materialised — the
    /// per-shard instruction/conditional totals still sum to this chunk's,
    /// but consumers that ignore `observe_cond` skip the copy. Counters
    /// not attached to any event (plain instructions, pre-existing
    /// conditional summaries) are credited to `out[0]`.
    ///
    /// The output chunks are appended to, not cleared: callers reusing
    /// scratch chunks across source chunks clear them after draining.
    ///
    /// # Panics
    ///
    /// Panics if `out` is empty or `route` returns an out-of-range index.
    pub fn partition_by_site<F>(&self, mut route: F, route_cond: bool, out: &mut [TraceChunk])
    where
        F: FnMut(Addr) -> usize,
    {
        assert!(!out.is_empty(), "partitioning needs at least one shard");
        out[0].record_instructions(self.plain_instructions());
        out[0].record_cond_summary(self.cond_summarised);
        for event in &self.events {
            match event {
                TraceEvent::Indirect(b) => {
                    out[route(b.pc)].push_indirect(b.pc, b.target, b.kind);
                }
                TraceEvent::Cond(b) => {
                    let shard = &mut out[route(b.pc)];
                    if route_cond {
                        shard.push_cond(b.pc, b.target, b.taken);
                    } else {
                        shard.record_cond_summary(1);
                    }
                }
            }
        }
    }
}

/// A resumable producer of trace events, consumed one [`TraceChunk`] at a
/// time.
///
/// Implementors: [`Trace::cursor`] (replays a materialised trace),
/// `ProgramSource` in `ibp-workload` (generates events on demand), and
/// `TextSource` in [`crate::io`] (parses a trace file incrementally).
pub trait EventSource {
    /// The trace name (benchmark name for generated traces).
    fn name(&self) -> &str;

    /// Clears `chunk`, then appends up to `max_indirect` indirect branches
    /// — plus their interleaved conditional events and instruction counts —
    /// and returns whether the source may produce more afterwards.
    ///
    /// The final chunk (return value `false`) can still carry events;
    /// consume every chunk this method fills. `max_indirect` of zero is a
    /// caller bug: no progress is possible.
    ///
    /// # Errors
    ///
    /// In-memory sources are infallible; file-backed sources surface I/O
    /// and parse failures.
    fn fill(&mut self, chunk: &mut TraceChunk, max_indirect: u64) -> Result<bool, TraceIoError>;

    /// Indirect branches this source will still produce, when known ahead
    /// of time (used only for capacity hints).
    fn remaining_indirect(&self) -> Option<u64> {
        None
    }
}

impl<S: EventSource + ?Sized> EventSource for &mut S {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn fill(&mut self, chunk: &mut TraceChunk, max_indirect: u64) -> Result<bool, TraceIoError> {
        (**self).fill(chunk, max_indirect)
    }

    fn remaining_indirect(&self) -> Option<u64> {
        (**self).remaining_indirect()
    }
}

/// Drains a source into a materialised [`Trace`].
///
/// The result is event- and counter-identical to the trace the source
/// streams; this is the bridge from the streaming world back to APIs that
/// want a whole trace (and the reference implementation the equivalence
/// tests check streaming consumers against).
///
/// # Errors
///
/// Propagates the source's I/O or parse failures.
pub fn collect_source<S: EventSource + ?Sized>(source: &mut S) -> Result<Trace, TraceIoError> {
    let capacity = source
        .remaining_indirect()
        .map_or(0, |n| usize::try_from(n).unwrap_or(usize::MAX).min(64 << 20));
    let mut trace = Trace::with_capacity(source.name().to_owned(), capacity);
    let mut chunk = TraceChunk::default();
    loop {
        let more = source.fill(&mut chunk, chunk_events())?;
        trace.extend_chunk(&chunk);
        if !more {
            return Ok(trace);
        }
    }
}

/// Replays a materialised [`Trace`] as an [`EventSource`].
///
/// Whole-trace counters that are not attached to events (recorded plain
/// instructions, summarised conditionals) are carried by the first chunk.
#[derive(Debug, Clone)]
pub struct TraceCursor<'a> {
    trace: &'a Trace,
    pos: usize,
    started: bool,
}

impl<'a> TraceCursor<'a> {
    /// A cursor at the start of `trace`.
    #[must_use]
    pub fn new(trace: &'a Trace) -> Self {
        TraceCursor {
            trace,
            pos: 0,
            started: false,
        }
    }
}

impl EventSource for TraceCursor<'_> {
    fn name(&self) -> &str {
        self.trace.name()
    }

    fn fill(&mut self, chunk: &mut TraceChunk, max_indirect: u64) -> Result<bool, TraceIoError> {
        chunk.clear();
        if !self.started {
            self.started = true;
            let trace = self.trace;
            let summarised = trace.cond_count()
                - trace
                    .events()
                    .iter()
                    .filter(|e| e.as_cond().is_some())
                    .count() as u64;
            let plain = trace.instructions() - trace.len() as u64 - summarised;
            chunk.record_instructions(plain);
            chunk.record_cond_summary(summarised);
        }
        let events = self.trace.events();
        let mut indirect = 0u64;
        while self.pos < events.len() && indirect < max_indirect {
            let event = events[self.pos];
            if event.as_indirect().is_some() {
                indirect += 1;
            }
            chunk.push(event);
            self.pos += 1;
        }
        Ok(self.pos < events.len())
    }

    fn remaining_indirect(&self) -> Option<u64> {
        Some(
            self.trace.events()[self.pos..]
                .iter()
                .filter(|e| e.as_indirect().is_some())
                .count() as u64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new("sample");
        t.record_instructions(40);
        for i in 0..10u32 {
            t.push_cond(Addr::new(0x20), Addr::new(0x80), i % 2 == 0);
            t.push_indirect(
                Addr::new(0x100 + 8 * (i % 3)),
                Addr::new(0x900 + 8 * (i % 2)),
                BranchKind::VirtualCall,
            );
        }
        t.record_cond_summary(7);
        t.push_cond(Addr::new(0x24), Addr::new(0x90), true);
        t
    }

    #[test]
    fn chunk_counters_mirror_trace_semantics() {
        let mut c = TraceChunk::default();
        c.record_instructions(10);
        c.push_indirect(Addr::new(0x10), Addr::new(0x100), BranchKind::Switch);
        c.push_cond(Addr::new(0x20), Addr::new(0x80), true);
        c.record_cond_summary(5);
        assert_eq!(c.len(), 2);
        assert_eq!(c.indirect_count(), 1);
        assert_eq!(c.cond_count(), 6);
        assert_eq!(c.cond_summarised(), 5);
        assert_eq!(c.instructions(), 17);
        assert_eq!(c.plain_instructions(), 10);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.instructions(), 0);
    }

    #[test]
    fn cursor_round_trips_through_collect() {
        let t = sample();
        for max in [1, 2, 3, 7, 64] {
            let mut cursor = TraceCursor::new(&t);
            let mut chunk = TraceChunk::default();
            let mut rebuilt = Trace::new(cursor.name().to_owned());
            loop {
                let more = cursor.fill(&mut chunk, max).expect("in-memory");
                rebuilt.extend_chunk(&chunk);
                if !more {
                    break;
                }
            }
            assert_eq!(rebuilt.events(), t.events(), "max_indirect = {max}");
            assert_eq!(rebuilt.instructions(), t.instructions());
            assert_eq!(rebuilt.indirect_count(), t.indirect_count());
            assert_eq!(rebuilt.cond_count(), t.cond_count());
        }
    }

    #[test]
    fn collect_source_matches_trace() {
        let t = sample();
        let rebuilt = collect_source(&mut t.cursor()).expect("in-memory");
        assert_eq!(rebuilt.events(), t.events());
        assert_eq!(rebuilt.name(), t.name());
        assert_eq!(rebuilt.instructions(), t.instructions());
    }

    #[test]
    fn first_chunk_carries_whole_trace_counters() {
        let t = sample();
        let mut cursor = t.cursor();
        let mut chunk = TraceChunk::default();
        let more = cursor.fill(&mut chunk, 1).expect("in-memory");
        assert!(more);
        // 40 plain instructions and 7 summarised conditionals front-loaded.
        assert_eq!(chunk.plain_instructions(), 40);
        assert_eq!(chunk.cond_summarised(), 7);
        let mut rest = TraceChunk::default();
        while cursor.fill(&mut rest, 1).expect("in-memory") {
            assert_eq!(rest.plain_instructions(), 0);
        }
    }

    #[test]
    fn chunks_respect_the_indirect_budget() {
        let t = sample();
        let mut cursor = t.cursor();
        let mut chunk = TraceChunk::default();
        let mut total_indirect = 0u64;
        loop {
            let more = cursor.fill(&mut chunk, 2).expect("in-memory");
            assert!(chunk.indirect_count() <= 2);
            total_indirect += chunk.indirect_count();
            if !more {
                break;
            }
        }
        assert_eq!(total_indirect, t.indirect_count());
    }

    #[test]
    fn remaining_indirect_tracks_progress() {
        let t = sample();
        let mut cursor = t.cursor();
        assert_eq!(cursor.remaining_indirect(), Some(10));
        let mut chunk = TraceChunk::default();
        let _ = cursor.fill(&mut chunk, 4).expect("in-memory");
        assert_eq!(cursor.remaining_indirect(), Some(6));
    }

    #[test]
    fn chunk_env_default() {
        assert!(chunk_events() > 0);
    }

    #[test]
    fn partition_preserves_per_shard_order_and_counters() {
        let t = sample();
        let mut cursor = t.cursor();
        let mut chunk = TraceChunk::default();
        let _ = cursor.fill(&mut chunk, 1_000).expect("in-memory");
        let route = |pc: Addr| (pc.word() as usize) % 3;
        let mut parts = vec![TraceChunk::default(); 3];
        chunk.partition_by_site(route, true, &mut parts);

        // Every shard's events appear in program order and on the right
        // shard; concatenating by a stable walk reproduces the multiset.
        let mut seen = 0;
        for (i, part) in parts.iter().enumerate() {
            let mut expected = chunk
                .events()
                .iter()
                .filter(|e| match e {
                    TraceEvent::Indirect(b) => route(b.pc) == i,
                    TraceEvent::Cond(b) => route(b.pc) == i,
                })
                .copied();
            for got in part.events() {
                assert_eq!(Some(*got), expected.next(), "shard {i} order");
                seen += 1;
            }
            assert!(expected.next().is_none(), "shard {i} complete");
        }
        assert_eq!(seen, chunk.len());

        // Counter equivalence: the shards sum to the source chunk.
        assert_eq!(
            parts.iter().map(TraceChunk::indirect_count).sum::<u64>(),
            chunk.indirect_count()
        );
        assert_eq!(
            parts.iter().map(TraceChunk::cond_count).sum::<u64>(),
            chunk.cond_count()
        );
        assert_eq!(
            parts.iter().map(TraceChunk::instructions).sum::<u64>(),
            chunk.instructions()
        );
    }

    #[test]
    fn partition_can_summarise_conditionals() {
        let t = sample();
        let mut cursor = t.cursor();
        let mut chunk = TraceChunk::default();
        let _ = cursor.fill(&mut chunk, 1_000).expect("in-memory");
        let mut parts = vec![TraceChunk::default(); 2];
        chunk.partition_by_site(|pc| (pc.word() as usize) % 2, false, &mut parts);
        for part in &parts {
            assert!(part
                .events()
                .iter()
                .all(|e| matches!(e, TraceEvent::Indirect(_))));
        }
        // Conditional executions are still all accounted for.
        assert_eq!(
            parts.iter().map(TraceChunk::cond_count).sum::<u64>(),
            chunk.cond_count()
        );
        assert_eq!(
            parts.iter().map(TraceChunk::instructions).sum::<u64>(),
            chunk.instructions()
        );
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn partition_into_nothing_panics() {
        let chunk = TraceChunk::default();
        chunk.partition_by_site(|_| 0, true, &mut []);
    }
}
