#!/usr/bin/env bash
# Tier-1 verification: exactly what CI runs.
#
#   scripts/verify.sh          # build + tests + clippy
#   scripts/verify.sh --fast   # skip the release build (debug tests + clippy)
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
for arg in "$@"; do
    case "$arg" in
        --fast) fast=1 ;;
        *) echo "usage: $0 [--fast]" >&2; exit 2 ;;
    esac
done

if [ "$fast" -eq 0 ]; then
    echo "==> cargo build --release"
    cargo build --release
fi

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "verify: OK"
