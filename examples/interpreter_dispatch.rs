//! Modelling a bytecode interpreter's dispatch loop.
//!
//! Interpreters are the classic hard case for BTBs: one indirect branch
//! (the dispatch `switch`) with dozens of targets, executed every few
//! instructions. This example builds a custom [`ProgramConfig`] shaped
//! like an interpreter — few sites, a hot megamorphic dispatch site,
//! opcode "idioms" (common bytecode shapes) — and shows how prediction
//! accuracy scales with path length, mirroring the paper's xlisp/perl
//! observations.
//!
//! ```text
//! cargo run --release --example interpreter_dispatch
//! ```

use ibp::core::PredictorConfig;
use ibp::sim::simulate;
use ibp::trace::CoverageLevel;
use ibp::workload::{KindMix, ProgramConfig};

fn main() {
    let mut config = ProgramConfig::new("toy-interpreter");
    // An interpreter: a handful of branch sites, one of them (the dispatch
    // switch) megamorphic and dominant.
    config.sites = 12;
    config.site_zipf = 1.7;
    config.classes = 10; // opcodes handled per dispatch site
    config.method_pool = Some(10); // opcode handlers
    config.mono_fraction = 0.25;
    config.class_skew = 0.3;
    config.kind_mix = KindMix::c_style();
    // The interpreted program: bytecode idioms composed into functions.
    config.activities = 48;
    config.idioms = 16;
    config.idiom_families = 4;
    config.melody_len = (3, 8);
    config.modes = 8;
    config.mode_reps = (1, 4);
    config.deviation = 0.01;
    config.noise = 0.005;
    config.cond_per_indirect = 8.0;
    config.instr_per_indirect = 40.0;

    let trace = config.build().generate_with_len(100_000);
    let stats = trace.stats();
    println!("toy interpreter trace:");
    println!(
        "  {} indirect branches from {} sites",
        stats.indirect_branches, stats.distinct_sites
    );
    println!(
        "  95% of dispatches come from {} site(s); hottest site has {} targets",
        stats.active_sites(CoverageLevel::P95),
        stats.sites[0].distinct_targets
    );
    println!(
        "  dominant-target share {:.1}% — the ceiling for any BTB-like scheme\n",
        stats.weighted_dominant_share() * 100.0
    );

    println!("{:<34} {:>11}", "predictor", "mispredict");
    println!("{}", "-".repeat(46));
    let mut btb = PredictorConfig::btb_2bc().build();
    let run = simulate(&trace, btb.as_mut());
    println!(
        "{:<34} {:>10.2}%",
        "BTB-2bc (target cache)",
        run.misprediction_rate() * 100.0
    );
    for p in [1usize, 2, 3, 4, 6, 8] {
        let mut predictor = PredictorConfig::practical(p, 512, 4).build();
        let run = simulate(&trace, predictor.as_mut());
        println!(
            "{:<34} {:>10.2}%",
            format!("two-level p={p}, 512-entry 4-way"),
            run.misprediction_rate() * 100.0
        );
    }
    println!(
        "\nThe opcode *sequence* is what identifies the interpreted\n\
         program's position — exactly the inter-branch correlation a\n\
         path-based history exploits and a BTB cannot."
    );
}
