//! Modelling an optimising compiler walking ASTs through several passes.
//!
//! Compilers (the paper's gcc, porky, edg, beta) execute polymorphic
//! visitors over heterogeneous trees, with distinct *phases* (parsing,
//! optimisation, code generation) whose behaviour differs. This example
//! shows two paper findings on such a workload:
//!
//! 1. a global path history beats per-branch histories (Figure 5), and
//! 2. a hybrid of a short- and a long-path component rides out phase
//!    changes better than either component alone (§6).
//!
//! ```text
//! cargo run --release --example compiler_passes
//! ```

use ibp::core::{HistorySharing, PredictorConfig};
use ibp::sim::simulate;
use ibp::workload::{KindMix, ProgramConfig};

fn main() {
    let mut config = ProgramConfig::new("toy-compiler");
    config.sites = 220;
    config.activities = 128; // AST node visitors
    config.idioms = 36; // common subtree shapes
    config.idiom_families = 9;
    config.melody_len = (4, 9); // per-function visit sequences
    config.modes = 18; // functions being compiled
    config.mode_reps = (1, 3);
    config.classes = 10;
    config.mono_fraction = 0.25;
    config.class_skew = 0.35;
    config.deviation = 0.02;
    config.noise = 0.015;
    config.kind_mix = KindMix::object_oriented(0.8);
    config.phase_events = Some(25_000); // pass boundaries
    config.cond_per_indirect = 18.0;
    config.instr_per_indirect = 150.0;

    let trace = config.build().generate_with_len(120_000);
    println!(
        "toy compiler trace: {} indirect branches, {} sites, pass change every 25k\n",
        trace.indirect_count(),
        trace.stats().distinct_sites
    );

    // Finding 1: global vs per-address history (unconstrained, p = 4).
    println!("history sharing (unconstrained two-level, p = 4):");
    for (label, sharing) in [
        ("  per-address history (s=2)", HistorySharing::PER_ADDRESS),
        ("  per-set history (s=12)", HistorySharing::per_set(12)),
        ("  global history (s=31)", HistorySharing::GLOBAL),
    ] {
        let mut predictor = PredictorConfig::unconstrained(4)
            .with_history_sharing(sharing)
            .build();
        let run = simulate(&trace, predictor.as_mut());
        println!("{label:<30} {:>6.2}%", run.misprediction_rate() * 100.0);
    }

    // Finding 2: hybrid vs its components at a fixed 4K-entry budget.
    println!("\nfixed 4K-entry budget (4-way tables):");
    let candidates: Vec<(&str, PredictorConfig)> = vec![
        (
            "  short paths only (p=1, 4K)",
            PredictorConfig::practical(1, 4096, 4),
        ),
        (
            "  long paths only (p=6, 4K)",
            PredictorConfig::practical(6, 4096, 4),
        ),
        (
            "  best single (p=3, 4K)",
            PredictorConfig::practical(3, 4096, 4),
        ),
        (
            "  hybrid p=6.1 (2x2K)",
            PredictorConfig::hybrid(6, 1, 2048, 4),
        ),
    ];
    for (label, cfg) in candidates {
        let mut predictor = cfg.build();
        let run = simulate(&trace, predictor.as_mut());
        println!("{label:<30} {:>6.2}%", run.misprediction_rate() * 100.0);
    }
    println!(
        "\nAfter each pass boundary the long-path component must relearn its\n\
         patterns; the hybrid's short-path component covers the gap, which\n\
         is why the combination beats any single path length."
    );
}
