//! Hardware-budget tuning: given a total number of table entries, which
//! predictor organisation should a designer pick?
//!
//! This walks the paper's §5–§6 decision procedure for a few budgets: for
//! each organisation (tagless / set-associative / fully-associative,
//! hybrid or not) it searches path lengths and reports the winner —
//! reproducing the crossover the paper highlights, where hybrids overtake
//! higher associativity once tables reach about 1K entries.
//!
//! ```text
//! cargo run --release --example budget_tuning [budget ...]
//! ```

use ibp::core::{Associativity, PredictorConfig};
use ibp::sim::{Suite, SuiteResult};
use ibp::workload::Benchmark;

fn search(
    suite: &Suite,
    label: &str,
    candidates: Vec<(String, PredictorConfig)>,
) -> Option<(String, f64)> {
    let mut best: Option<(String, f64)> = None;
    for (name, cfg) in candidates {
        let result: SuiteResult = suite.run(|| cfg.build());
        let avg = result.avg();
        if best.as_ref().is_none_or(|(_, b)| avg < *b) {
            best = Some((format!("{label} {name}"), avg));
        }
    }
    best
}

fn main() {
    let budgets: Vec<usize> = {
        let args: Vec<usize> = std::env::args()
            .skip(1)
            .filter_map(|a| a.parse().ok())
            .collect();
        if args.is_empty() {
            vec![256, 1024, 8192]
        } else {
            args
        }
    };

    // A small but representative slice of the suite keeps this example
    // snappy; use the `fig18_best_predictors` binary for the full search.
    let suite = Suite::with_benchmarks_and_len(
        &[
            Benchmark::Ixx,
            Benchmark::Porky,
            Benchmark::Eqn,
            Benchmark::Gcc,
            Benchmark::Xlisp,
        ],
        60_000,
    );

    for budget in budgets {
        println!("== budget: {budget} total entries ==");
        let mut winners: Vec<(String, f64)> = Vec::new();
        for (label, assoc) in [
            ("tagless", Associativity::Tagless),
            ("2-way", Associativity::Ways(2)),
            ("4-way", Associativity::Ways(4)),
        ] {
            let singles = (0..=6usize)
                .map(|p| {
                    (
                        format!("p={p}"),
                        PredictorConfig::practical(p, budget, 1).with_associativity(assoc),
                    )
                })
                .collect();
            if let Some(w) = search(&suite, label, singles) {
                winners.push(w);
            }
            if budget >= 64 {
                let hybrids = (2..=7usize)
                    .flat_map(|long| {
                        [0usize, 1, 2]
                            .into_iter()
                            .filter_map(move |short| (short < long).then_some((long, short)))
                    })
                    .map(|(long, short)| {
                        (
                            format!("p={long}.{short}"),
                            PredictorConfig::hybrid(long, short, budget / 2, 1)
                                .with_associativity(assoc),
                        )
                    })
                    .collect();
                if let Some(w) = search(&suite, &format!("hybrid {label}"), hybrids) {
                    winners.push(w);
                }
            }
        }
        winners.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        for (i, (name, avg)) in winners.iter().enumerate() {
            let marker = if i == 0 { "  <-- pick this" } else { "" };
            println!("  {name:<26} {:>6.2}%{marker}", avg * 100.0);
        }
        println!();
    }
}
