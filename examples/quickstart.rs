//! Quickstart: compare a BTB, a practical two-level predictor and a hybrid
//! on one synthetic benchmark.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ibp::core::PredictorConfig;
use ibp::sim::simulate;
use ibp::workload::Benchmark;

fn main() {
    // `ixx` is the paper's poster child: an unconstrained BTB mispredicts
    // almost half its indirect branches, yet they are highly predictable
    // from path history.
    let trace = Benchmark::Ixx.trace_with_len(100_000);
    println!(
        "benchmark: {} ({} indirect branches, {} sites)\n",
        trace.name(),
        trace.indirect_count(),
        trace.stats().distinct_sites
    );

    let configs: Vec<(&str, PredictorConfig)> = vec![
        ("BTB (always-update)", PredictorConfig::btb()),
        ("BTB-2bc", PredictorConfig::btb_2bc()),
        (
            "two-level p=3, 1K 4-way",
            PredictorConfig::practical(3, 1024, 4),
        ),
        (
            "two-level p=4, 8K 4-way",
            PredictorConfig::practical(4, 8192, 4),
        ),
        (
            "hybrid p=5.1, 8K total",
            PredictorConfig::hybrid(5, 1, 4096, 4),
        ),
    ];

    println!(
        "{:<28} {:>12} {:>10}",
        "predictor", "mispredict", "hit rate"
    );
    println!("{}", "-".repeat(52));
    for (label, cfg) in configs {
        let mut predictor = cfg.build();
        let run = simulate(&trace, predictor.as_mut());
        println!(
            "{label:<28} {:>11.2}% {:>9.2}%",
            run.misprediction_rate() * 100.0,
            run.hit_rate() * 100.0
        );
    }

    println!(
        "\nThe two-level predictor resolves the polymorphic call sites the\n\
         BTB keeps missing; the hybrid adds a long-path component that\n\
         captures longer-range correlations without losing the short-path\n\
         component's fast warm-up."
    );
}
