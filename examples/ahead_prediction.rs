//! The paper's boldest future-work idea (§8.1): predict not just the
//! current branch's target, but *which indirect branch comes next* — and
//! chain those predictions to run ahead of execution.
//!
//! This example trains an [`AheadPredictor`] on an interpreter-like
//! workload and measures how accuracy decays with lookahead depth, the
//! trade-off a fetch engine running ahead of resolution would live with.
//!
//! ```text
//! cargo run --release --example ahead_prediction
//! ```

use std::collections::VecDeque;

use ibp::core::ext::{AheadPrediction, AheadPredictor};
use ibp::core::Predictor;
use ibp::trace::{Addr, TraceEvent};
use ibp::workload::Benchmark;

const MAX_DEPTH: usize = 8;

fn main() {
    let trace = Benchmark::Xlisp.trace_with_len(100_000);
    println!(
        "workload: {} ({} indirect branches)\n",
        trace.name(),
        trace.indirect_count()
    );

    let mut predictor = AheadPredictor::new(4);
    // pending[d] holds predictions issued d+1 branches ago at chain depth d.
    let mut pending: Vec<VecDeque<AheadPrediction>> = vec![VecDeque::new(); MAX_DEPTH];
    let mut correct = [0u64; MAX_DEPTH];
    let mut pc_only = [0u64; MAX_DEPTH];
    let mut scored = 0u64;

    for event in trace.events() {
        let TraceEvent::Indirect(branch) = event else {
            continue;
        };
        scored += 1;
        for (d, queue) in pending.iter_mut().enumerate() {
            if queue.len() > d {
                if let Some(pred) = queue.pop_front() {
                    if pred.pc == branch.pc {
                        pc_only[d] += 1;
                        if pred.target == branch.target {
                            correct[d] += 1;
                        }
                    }
                }
            }
        }
        predictor.update(branch.pc, branch.target);
        let chain = predictor.predict_chain(MAX_DEPTH);
        for (d, queue) in pending.iter_mut().enumerate() {
            queue.push_back(chain.get(d).copied().unwrap_or(AheadPrediction {
                pc: Addr::ZERO,
                target: Addr::ZERO,
            }));
        }
    }

    println!(
        "{:>6} {:>18} {:>16}",
        "depth", "branch+target ok", "branch addr ok"
    );
    println!("{}", "-".repeat(44));
    for d in 0..MAX_DEPTH {
        println!(
            "{:>6} {:>17.2}% {:>15.2}%",
            d + 1,
            correct[d] as f64 / scored as f64 * 100.0,
            pc_only[d] as f64 / scored as f64 * 100.0
        );
    }
    println!(
        "\nEach extra step multiplies in the per-link uncertainty, so accuracy\n\
         decays roughly geometrically — but several branches of useful\n\
         lookahead survive, which is what lets a front end fetch past\n\
         multiple unresolved indirect branches ({} patterns learned).",
        predictor.stored_patterns()
    );
}
