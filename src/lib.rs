//! # ibp — Accurate Indirect Branch Prediction
//!
//! A from-scratch Rust reproduction of Driesen & Hölzle, *Accurate Indirect
//! Branch Prediction* (ISCA '98 / UCSB TRCS97-19): the complete design space
//! of two-level and hybrid indirect-branch predictors, together with the
//! trace and workload substrates the study depends on.
//!
//! This façade crate re-exports the workspace members:
//!
//! * [`trace`] — addresses, branch events, traces, trace statistics;
//! * [`workload`] — the synthetic benchmark suite standing in for the
//!   paper's shade-generated SPECint95/C++ traces;
//! * [`core`] — the predictors themselves (BTB, two-level, hybrid, and the
//!   paper's future-work extensions);
//! * [`sim`] — the simulation driver, benchmark groups, parameter sweeps and
//!   every figure/table experiment.
//!
//! # Quickstart
//!
//! ```
//! use ibp::core::{Predictor, PredictorConfig};
//! use ibp::sim::simulate;
//! use ibp::workload::Benchmark;
//!
//! // Generate a small synthetic trace for the paper's `ixx` benchmark.
//! let trace = Benchmark::Ixx.trace_with_len(20_000);
//!
//! // An unconstrained BTB with two-bit-counter update (the paper's baseline)
//! let mut btb = PredictorConfig::btb_2bc().build();
//! let btb_run = simulate(&trace, btb.as_mut());
//!
//! // A practical two-level predictor: path length 3, 1K-entry 4-way table.
//! let mut two_level = PredictorConfig::practical(3, 1024, 4).build();
//! let tl_run = simulate(&trace, two_level.as_mut());
//!
//! assert!(tl_run.misprediction_rate() < btb_run.misprediction_rate());
//! ```

pub use ibp_core as core;
pub use ibp_sim as sim;
pub use ibp_trace as trace;
pub use ibp_workload as workload;
